//! Satellite of the layout-aware-planning refactor: `CostModel::Legacy`
//! must reproduce the pre-refactor planner byte-for-byte across the
//! full 18-point CLI sweep (9 geometries x {f64, f32}).
//!
//! The pinned strings below are `SolvePlan::describe()` under the
//! default (Legacy) config. The 11 Fig. 12/13 points among them are
//! certified pre-refactor by `plan_snapshots.rs`; the remaining f32
//! widths were captured from the same Legacy decision path. The
//! proptest side hammers purity: arbitrary seeds and execution-config
//! noise must never perturb a Legacy plan.

use proptest::prelude::*;
use tridiag_gpu::solver::{CostModel, GpuSolverConfig, GpuTridiagSolver};

/// The CLI `plan --sweep` grid: 9 geometries at both scalar widths.
const SWEEP: &[(usize, usize)] = &[
    (64, 512),
    (256, 512),
    (1024, 512),
    (64, 2048),
    (256, 2048),
    (2048, 64),
    (256, 256),
    (16, 1024),
    (1, 16384),
];

/// Pinned `describe()` for every sweep point under the Legacy model.
const GOLDEN: &str = r#"
=== m=64 n=512 f64 ===
plan: m=64 n=512 f64 on GTX480
  k=6 mapping=BlockPerSystem fused=false layout=Contiguous
  buffers: 11 (360448 elems, 2883584 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (32768 elems)
     3. upload b -> buf[1] b (32768 elems)
     4. upload c -> buf[2] c (32768 elems)
     5. upload d -> buf[3] d (32768 elems)
     6. alloc buf[4] x (32768 elems)
     7. alloc buf[5] out_a (32768 elems)
     8. alloc buf[6] out_b (32768 elems)
     9. alloc buf[7] out_c (32768 elems)
    10. alloc buf[8] out_d (32768 elems)
    11. launch tiled_pcr grid=64 threads=64 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=6 sub_tile=64
    12. alloc buf[9] c_prime (32768 elems)
    13. alloc buf[10] d_prime (32768 elems)
    14. launch p_thomas grid=32 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 64, n: 512, k: 6 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== m=64 n=512 f32 ===
plan: m=64 n=512 f32 on GTX480
  k=6 mapping=BlockPerSystem fused=false layout=Contiguous
  buffers: 11 (360448 elems, 1441792 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (32768 elems)
     3. upload b -> buf[1] b (32768 elems)
     4. upload c -> buf[2] c (32768 elems)
     5. upload d -> buf[3] d (32768 elems)
     6. alloc buf[4] x (32768 elems)
     7. alloc buf[5] out_a (32768 elems)
     8. alloc buf[6] out_b (32768 elems)
     9. alloc buf[7] out_c (32768 elems)
    10. alloc buf[8] out_d (32768 elems)
    11. launch tiled_pcr grid=64 threads=64 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=6 sub_tile=64
    12. alloc buf[9] c_prime (32768 elems)
    13. alloc buf[10] d_prime (32768 elems)
    14. launch p_thomas grid=32 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 64, n: 512, k: 6 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== m=256 n=512 f64 ===
plan: m=256 n=512 f64 on GTX480
  k=6 mapping=BlockPerSystem fused=false layout=Contiguous
  buffers: 11 (1441792 elems, 11534336 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (131072 elems)
     3. upload b -> buf[1] b (131072 elems)
     4. upload c -> buf[2] c (131072 elems)
     5. upload d -> buf[3] d (131072 elems)
     6. alloc buf[4] x (131072 elems)
     7. alloc buf[5] out_a (131072 elems)
     8. alloc buf[6] out_b (131072 elems)
     9. alloc buf[7] out_c (131072 elems)
    10. alloc buf[8] out_d (131072 elems)
    11. launch tiled_pcr grid=256 threads=64 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=6 sub_tile=64
    12. alloc buf[9] c_prime (131072 elems)
    13. alloc buf[10] d_prime (131072 elems)
    14. launch p_thomas grid=128 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 256, n: 512, k: 6 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== m=256 n=512 f32 ===
plan: m=256 n=512 f32 on GTX480
  k=6 mapping=BlockPerSystem fused=false layout=Contiguous
  buffers: 11 (1441792 elems, 5767168 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (131072 elems)
     3. upload b -> buf[1] b (131072 elems)
     4. upload c -> buf[2] c (131072 elems)
     5. upload d -> buf[3] d (131072 elems)
     6. alloc buf[4] x (131072 elems)
     7. alloc buf[5] out_a (131072 elems)
     8. alloc buf[6] out_b (131072 elems)
     9. alloc buf[7] out_c (131072 elems)
    10. alloc buf[8] out_d (131072 elems)
    11. launch tiled_pcr grid=256 threads=64 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=6 sub_tile=64
    12. alloc buf[9] c_prime (131072 elems)
    13. alloc buf[10] d_prime (131072 elems)
    14. launch p_thomas grid=128 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 256, n: 512, k: 6 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== m=1024 n=512 f64 ===
plan: m=1024 n=512 f64 on GTX480
  k=0 mapping=BlockPerSystem fused=false layout=Interleaved
  buffers: 7 (3670016 elems, 29360128 bytes device footprint)
  kernels: p_thomas
  steps:
     1. convert -> Interleaved
     2. upload a -> buf[0] a (524288 elems)
     3. upload b -> buf[1] b (524288 elems)
     4. upload c -> buf[2] c (524288 elems)
     5. upload d -> buf[3] d (524288 elems)
     6. alloc buf[4] x (524288 elems)
     7. alloc buf[5] c_prime (524288 elems)
     8. alloc buf[6] d_prime (524288 elems)
     9. launch p_thomas grid=8 threads=128 regs=24 binds=[0, 1, 2, 3, 5, 6, 4] map=Interleaved { m: 1024, n: 512 }
    10. download buf[4] x
    11. convert-back <- Interleaved
=== m=1024 n=512 f32 ===
plan: m=1024 n=512 f32 on GTX480
  k=0 mapping=BlockPerSystem fused=false layout=Interleaved
  buffers: 7 (3670016 elems, 14680064 bytes device footprint)
  kernels: p_thomas
  steps:
     1. convert -> Interleaved
     2. upload a -> buf[0] a (524288 elems)
     3. upload b -> buf[1] b (524288 elems)
     4. upload c -> buf[2] c (524288 elems)
     5. upload d -> buf[3] d (524288 elems)
     6. alloc buf[4] x (524288 elems)
     7. alloc buf[5] c_prime (524288 elems)
     8. alloc buf[6] d_prime (524288 elems)
     9. launch p_thomas grid=8 threads=128 regs=24 binds=[0, 1, 2, 3, 5, 6, 4] map=Interleaved { m: 1024, n: 512 }
    10. download buf[4] x
    11. convert-back <- Interleaved
=== m=64 n=2048 f64 ===
plan: m=64 n=2048 f64 on GTX480
  k=6 mapping=BlockPerSystem fused=false layout=Contiguous
  buffers: 11 (1441792 elems, 11534336 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (131072 elems)
     3. upload b -> buf[1] b (131072 elems)
     4. upload c -> buf[2] c (131072 elems)
     5. upload d -> buf[3] d (131072 elems)
     6. alloc buf[4] x (131072 elems)
     7. alloc buf[5] out_a (131072 elems)
     8. alloc buf[6] out_b (131072 elems)
     9. alloc buf[7] out_c (131072 elems)
    10. alloc buf[8] out_d (131072 elems)
    11. launch tiled_pcr grid=64 threads=64 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=6 sub_tile=64
    12. alloc buf[9] c_prime (131072 elems)
    13. alloc buf[10] d_prime (131072 elems)
    14. launch p_thomas grid=32 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 64, n: 2048, k: 6 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== m=64 n=2048 f32 ===
plan: m=64 n=2048 f32 on GTX480
  k=6 mapping=BlockPerSystem fused=false layout=Contiguous
  buffers: 11 (1441792 elems, 5767168 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (131072 elems)
     3. upload b -> buf[1] b (131072 elems)
     4. upload c -> buf[2] c (131072 elems)
     5. upload d -> buf[3] d (131072 elems)
     6. alloc buf[4] x (131072 elems)
     7. alloc buf[5] out_a (131072 elems)
     8. alloc buf[6] out_b (131072 elems)
     9. alloc buf[7] out_c (131072 elems)
    10. alloc buf[8] out_d (131072 elems)
    11. launch tiled_pcr grid=64 threads=64 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=6 sub_tile=64
    12. alloc buf[9] c_prime (131072 elems)
    13. alloc buf[10] d_prime (131072 elems)
    14. launch p_thomas grid=32 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 64, n: 2048, k: 6 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== m=256 n=2048 f64 ===
plan: m=256 n=2048 f64 on GTX480
  k=6 mapping=BlockPerSystem fused=false layout=Contiguous
  buffers: 11 (5767168 elems, 46137344 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (524288 elems)
     3. upload b -> buf[1] b (524288 elems)
     4. upload c -> buf[2] c (524288 elems)
     5. upload d -> buf[3] d (524288 elems)
     6. alloc buf[4] x (524288 elems)
     7. alloc buf[5] out_a (524288 elems)
     8. alloc buf[6] out_b (524288 elems)
     9. alloc buf[7] out_c (524288 elems)
    10. alloc buf[8] out_d (524288 elems)
    11. launch tiled_pcr grid=256 threads=64 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=6 sub_tile=64
    12. alloc buf[9] c_prime (524288 elems)
    13. alloc buf[10] d_prime (524288 elems)
    14. launch p_thomas grid=128 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 256, n: 2048, k: 6 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== m=256 n=2048 f32 ===
plan: m=256 n=2048 f32 on GTX480
  k=6 mapping=BlockPerSystem fused=false layout=Contiguous
  buffers: 11 (5767168 elems, 23068672 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (524288 elems)
     3. upload b -> buf[1] b (524288 elems)
     4. upload c -> buf[2] c (524288 elems)
     5. upload d -> buf[3] d (524288 elems)
     6. alloc buf[4] x (524288 elems)
     7. alloc buf[5] out_a (524288 elems)
     8. alloc buf[6] out_b (524288 elems)
     9. alloc buf[7] out_c (524288 elems)
    10. alloc buf[8] out_d (524288 elems)
    11. launch tiled_pcr grid=256 threads=64 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=6 sub_tile=64
    12. alloc buf[9] c_prime (524288 elems)
    13. alloc buf[10] d_prime (524288 elems)
    14. launch p_thomas grid=128 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 256, n: 2048, k: 6 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== m=2048 n=64 f64 ===
plan: m=2048 n=64 f64 on GTX480
  k=0 mapping=BlockPerSystem fused=false layout=Interleaved
  buffers: 7 (917504 elems, 7340032 bytes device footprint)
  kernels: p_thomas
  steps:
     1. convert -> Interleaved
     2. upload a -> buf[0] a (131072 elems)
     3. upload b -> buf[1] b (131072 elems)
     4. upload c -> buf[2] c (131072 elems)
     5. upload d -> buf[3] d (131072 elems)
     6. alloc buf[4] x (131072 elems)
     7. alloc buf[5] c_prime (131072 elems)
     8. alloc buf[6] d_prime (131072 elems)
     9. launch p_thomas grid=16 threads=128 regs=24 binds=[0, 1, 2, 3, 5, 6, 4] map=Interleaved { m: 2048, n: 64 }
    10. download buf[4] x
    11. convert-back <- Interleaved
=== m=2048 n=64 f32 ===
plan: m=2048 n=64 f32 on GTX480
  k=0 mapping=BlockPerSystem fused=false layout=Interleaved
  buffers: 7 (917504 elems, 3670016 bytes device footprint)
  kernels: p_thomas
  steps:
     1. convert -> Interleaved
     2. upload a -> buf[0] a (131072 elems)
     3. upload b -> buf[1] b (131072 elems)
     4. upload c -> buf[2] c (131072 elems)
     5. upload d -> buf[3] d (131072 elems)
     6. alloc buf[4] x (131072 elems)
     7. alloc buf[5] c_prime (131072 elems)
     8. alloc buf[6] d_prime (131072 elems)
     9. launch p_thomas grid=16 threads=128 regs=24 binds=[0, 1, 2, 3, 5, 6, 4] map=Interleaved { m: 2048, n: 64 }
    10. download buf[4] x
    11. convert-back <- Interleaved
=== m=256 n=256 f64 ===
plan: m=256 n=256 f64 on GTX480
  k=6 mapping=BlockPerSystem fused=false layout=Contiguous
  buffers: 11 (720896 elems, 5767168 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (65536 elems)
     3. upload b -> buf[1] b (65536 elems)
     4. upload c -> buf[2] c (65536 elems)
     5. upload d -> buf[3] d (65536 elems)
     6. alloc buf[4] x (65536 elems)
     7. alloc buf[5] out_a (65536 elems)
     8. alloc buf[6] out_b (65536 elems)
     9. alloc buf[7] out_c (65536 elems)
    10. alloc buf[8] out_d (65536 elems)
    11. launch tiled_pcr grid=256 threads=64 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=6 sub_tile=64
    12. alloc buf[9] c_prime (65536 elems)
    13. alloc buf[10] d_prime (65536 elems)
    14. launch p_thomas grid=128 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 256, n: 256, k: 6 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== m=256 n=256 f32 ===
plan: m=256 n=256 f32 on GTX480
  k=6 mapping=BlockPerSystem fused=false layout=Contiguous
  buffers: 11 (720896 elems, 2883584 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (65536 elems)
     3. upload b -> buf[1] b (65536 elems)
     4. upload c -> buf[2] c (65536 elems)
     5. upload d -> buf[3] d (65536 elems)
     6. alloc buf[4] x (65536 elems)
     7. alloc buf[5] out_a (65536 elems)
     8. alloc buf[6] out_b (65536 elems)
     9. alloc buf[7] out_c (65536 elems)
    10. alloc buf[8] out_d (65536 elems)
    11. launch tiled_pcr grid=256 threads=64 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=6 sub_tile=64
    12. alloc buf[9] c_prime (65536 elems)
    13. alloc buf[10] d_prime (65536 elems)
    14. launch p_thomas grid=128 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 256, n: 256, k: 6 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== m=16 n=1024 f64 ===
plan: m=16 n=1024 f64 on GTX480
  k=7 mapping=BlockGroupPerSystem(2) fused=false layout=Contiguous
  buffers: 11 (180224 elems, 1441792 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (16384 elems)
     3. upload b -> buf[1] b (16384 elems)
     4. upload c -> buf[2] c (16384 elems)
     5. upload d -> buf[3] d (16384 elems)
     6. alloc buf[4] x (16384 elems)
     7. alloc buf[5] out_a (16384 elems)
     8. alloc buf[6] out_b (16384 elems)
     9. alloc buf[7] out_c (16384 elems)
    10. alloc buf[8] out_d (16384 elems)
    11. launch tiled_pcr grid=32 threads=128 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=7 sub_tile=128
    12. alloc buf[9] c_prime (16384 elems)
    13. alloc buf[10] d_prime (16384 elems)
    14. launch p_thomas grid=16 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 16, n: 1024, k: 7 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== m=16 n=1024 f32 ===
plan: m=16 n=1024 f32 on GTX480
  k=7 mapping=BlockGroupPerSystem(2) fused=false layout=Contiguous
  buffers: 11 (180224 elems, 720896 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (16384 elems)
     3. upload b -> buf[1] b (16384 elems)
     4. upload c -> buf[2] c (16384 elems)
     5. upload d -> buf[3] d (16384 elems)
     6. alloc buf[4] x (16384 elems)
     7. alloc buf[5] out_a (16384 elems)
     8. alloc buf[6] out_b (16384 elems)
     9. alloc buf[7] out_c (16384 elems)
    10. alloc buf[8] out_d (16384 elems)
    11. launch tiled_pcr grid=32 threads=128 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=7 sub_tile=128
    12. alloc buf[9] c_prime (16384 elems)
    13. alloc buf[10] d_prime (16384 elems)
    14. launch p_thomas grid=16 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 16, n: 1024, k: 7 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== m=1 n=16384 f64 ===
plan: m=1 n=16384 f64 on GTX480
  k=8 mapping=BlockGroupPerSystem(16) fused=false layout=Contiguous
  buffers: 11 (180224 elems, 1441792 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (16384 elems)
     3. upload b -> buf[1] b (16384 elems)
     4. upload c -> buf[2] c (16384 elems)
     5. upload d -> buf[3] d (16384 elems)
     6. alloc buf[4] x (16384 elems)
     7. alloc buf[5] out_a (16384 elems)
     8. alloc buf[6] out_b (16384 elems)
     9. alloc buf[7] out_c (16384 elems)
    10. alloc buf[8] out_d (16384 elems)
    11. launch tiled_pcr grid=16 threads=256 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=8 sub_tile=256
    12. alloc buf[9] c_prime (16384 elems)
    13. alloc buf[10] d_prime (16384 elems)
    14. launch p_thomas grid=2 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 1, n: 16384, k: 8 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== m=1 n=16384 f32 ===
plan: m=1 n=16384 f32 on GTX480
  k=8 mapping=BlockGroupPerSystem(16) fused=false layout=Contiguous
  buffers: 11 (180224 elems, 720896 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (16384 elems)
     3. upload b -> buf[1] b (16384 elems)
     4. upload c -> buf[2] c (16384 elems)
     5. upload d -> buf[3] d (16384 elems)
     6. alloc buf[4] x (16384 elems)
     7. alloc buf[5] out_a (16384 elems)
     8. alloc buf[6] out_b (16384 elems)
     9. alloc buf[7] out_c (16384 elems)
    10. alloc buf[8] out_d (16384 elems)
    11. launch tiled_pcr grid=16 threads=256 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=8 sub_tile=256
    12. alloc buf[9] c_prime (16384 elems)
    13. alloc buf[10] d_prime (16384 elems)
    14. launch p_thomas grid=2 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 1, n: 16384, k: 8 }
    15. download buf[4] x
    16. convert-back <- Contiguous
"#;

/// Split the `=== key ===`-delimited blob into (key, body) pairs.
fn parse_golden() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = Vec::new();
    for line in GOLDEN.lines() {
        if let Some(k) = line.strip_prefix("=== ").and_then(|r| r.strip_suffix(" ===")) {
            out.push((k.to_string(), String::new()));
        } else if let Some(last) = out.last_mut() {
            if !line.is_empty() {
                last.1.push_str(line);
                last.1.push('\n');
            }
        }
    }
    out
}

fn legacy_plan(m: usize, n: usize, bytes: usize, config: &GpuSolverConfig) -> String {
    let solver = GpuTridiagSolver::new(gpu_sim::DeviceSpec::gtx480(), *config);
    assert_eq!(config.cost, CostModel::Legacy);
    solver
        .plan_geometry(m, n, bytes)
        .unwrap_or_else(|e| panic!("m={m} n={n}: {e}"))
        .describe()
}

/// Every sweep point, both widths, against the pinned golden text.
#[test]
fn legacy_plans_match_the_pinned_sweep() {
    let golden = parse_golden();
    assert_eq!(golden.len(), SWEEP.len() * 2, "golden blob size");
    let mut it = golden.iter();
    for &(m, n) in SWEEP {
        for bytes in [8usize, 4] {
            let prec = if bytes == 4 { "f32" } else { "f64" };
            let (key, body) = it.next().unwrap();
            assert_eq!(key, &format!("m={m} n={n} {prec}"), "golden order");
            let got = legacy_plan(m, n, bytes, &GpuSolverConfig::default());
            assert_eq!(&got, body, "Legacy plan drifted for m={m} n={n} {prec}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Planning is pure: no execution-config switch, explicit-vs-default
    /// cost model spelling, or rebuild may perturb a Legacy plan's
    /// bytes on any sweep point.
    #[test]
    fn legacy_plans_are_pure_under_config_noise(
        idx in 0usize..18,
        sanitize in any::<bool>(),
        lint in any::<bool>(),
    ) {
        let (m, n) = SWEEP[idx / 2];
        let bytes = if idx % 2 == 0 { 8 } else { 4 };
        let base = legacy_plan(m, n, bytes, &GpuSolverConfig::default());
        let noisy = GpuSolverConfig {
            exec: match (sanitize, lint) {
                (true, true) => gpu_sim::ExecConfig::checked(),
                (true, false) => gpu_sim::ExecConfig::sanitized(),
                (false, true) => gpu_sim::ExecConfig::planned(),
                (false, false) => gpu_sim::ExecConfig::default(),
            },
            cost: CostModel::Legacy,
            ..Default::default()
        };
        prop_assert_eq!(
            &legacy_plan(m, n, bytes, &noisy),
            &base,
            "exec/cost config noise perturbed the plan at m={} n={} bytes={}",
            m, n, bytes
        );
        // Rebuild determinism, JSON included.
        let solver = GpuTridiagSolver::new(gpu_sim::DeviceSpec::gtx480(), GpuSolverConfig::default());
        let p1 = solver.plan_geometry(m, n, bytes).unwrap();
        let p2 = solver.plan_geometry(m, n, bytes).unwrap();
        prop_assert_eq!(p1.to_json().to_string(), p2.to_json().to_string());
        prop_assert_eq!(p1, p2);
    }
}
