//! Golden plan snapshots: the Fig. 12/13 sweep geometries, each solved
//! end-to-end, with the full per-kernel / per-phase counter and timing
//! breakdown plus a bit-exact solution hash pinned as text.
//!
//! The pinned strings were captured from the solver *before* the
//! plan/execute split; the suite therefore proves the refactor is
//! bit-identical — same kernel sequence, same counters, same modeled
//! microseconds, same solution bits.

use std::fmt::Write as _;
use tridiag_core::generators::random_batch;
use tridiag_gpu::solver::{GpuSolveReport, GpuTridiagSolver};
use tridiag_gpu::{GpuScalar, PlanExecutor};

/// The Fig. 12/13 sweep: (label, precision, m, n) — the same points the
/// committed `BENCH_solver.json` perf baseline covers.
const SWEEP: &[(&str, &str, usize, usize)] = &[
    ("fig12", "f64", 64, 512),
    ("fig12", "f64", 256, 512),
    ("fig12", "f64", 1024, 512),
    ("fig12", "f64", 64, 2048),
    ("fig12", "f64", 256, 2048),
    ("fig13", "f64", 2048, 64),
    ("fig13", "f64", 256, 256),
    ("fig13", "f64", 16, 1024),
    ("fig13", "f64", 1, 16384),
    ("fig12", "f32", 256, 512),
    ("fig13", "f32", 16, 1024),
];

const SEED: u64 = 42;

/// FNV-1a over the shortest round-trip (`{:?}`) representation of every
/// solution element — a bit-exact fingerprint of the output vector.
fn solution_hash<S: GpuScalar>(x: &[S]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in x {
        for b in format!("{v:?}").bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Everything observable about a solve, as deterministic text: pipeline
/// decisions, per-kernel geometry/timing, per-phase counters (exact
/// integers) and per-phase modeled time (exact `f64` repr).
fn report_snapshot<S: GpuScalar>(x: &[S], report: &GpuSolveReport) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "k={} mapping={:?} fused={} precision={} total_us={:?} sol={:#018x}",
        report.k,
        report.mapping,
        report.fused,
        report.precision,
        report.total_us,
        solution_hash(x)
    )
    .unwrap();
    for kr in &report.kernels {
        writeln!(
            s,
            "kernel={} blocks={} shared={} total_us={:?} launch_us={:?} bound={:?}",
            kr.timing.name,
            kr.blocks,
            kr.shared_bytes,
            kr.timing.total_us,
            kr.timing.launch_us,
            kr.timing.bound
        )
        .unwrap();
        for ph in &kr.timing.phases {
            writeln!(
                s,
                "  phase={} us={:?} flops={} gbytes={} gtxn={} rounds={} sh={} replays={} barriers={}",
                ph.label,
                ph.us,
                ph.stats.flops,
                ph.stats.global_bytes(),
                ph.stats.global_transactions(),
                ph.stats.global_access_rounds,
                ph.stats.shared_accesses,
                ph.stats.bank_conflict_replays,
                ph.stats.barriers
            )
            .unwrap();
        }
    }
    s
}

fn run_point<S: GpuScalar>(m: usize, n: usize) -> String {
    let batch = random_batch::<S>(m, n, SEED);
    let (x, report) = GpuTridiagSolver::gtx480()
        .solve_batch(&batch)
        .unwrap_or_else(|e| panic!("m={m} n={n}: {e}"));
    assert!(report.is_phase_sum_clean(), "m={m} n={n}");
    assert!(report.violations.is_empty(), "m={m} n={n}");
    report_snapshot(&x, &report)
}

fn run_sweep() -> Vec<(String, String)> {
    SWEEP
        .iter()
        .map(|&(fig, prec, m, n)| {
            let snap = match prec {
                "f32" => run_point::<f32>(m, n),
                _ => run_point::<f64>(m, n),
            };
            (format!("{fig} {prec} m={m} n={n}"), snap)
        })
        .collect()
}

/// Regeneration helper: `cargo test --release -p tridiag-gpu --test
/// plan_snapshots regenerate -- --ignored --nocapture` prints the
/// current snapshots in the exact golden format.
#[test]
#[ignore = "generator, not a check"]
fn regenerate() {
    for (key, snap) in run_sweep() {
        println!("=== {key} ===");
        print!("{snap}");
    }
    println!("=== end ===");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn sweep_reports_match_pre_refactor_goldens() {
    let golden = parse_golden(GOLDEN_REPORTS);
    let actual = run_sweep();
    assert_eq!(actual.len(), golden.len(), "sweep size");
    for ((key, snap), (gkey, gsnap)) in actual.iter().zip(&golden) {
        assert_eq!(key, gkey, "sweep order");
        assert_eq!(snap, gsnap, "solve report drifted for {key}");
    }
}

/// The planner half of the sweep: `SolvePlan::describe()` per point.
/// Pure — no kernel ever launches — so it runs in debug builds too.
fn plan_sweep() -> Vec<(String, String)> {
    SWEEP
        .iter()
        .map(|&(fig, prec, m, n)| {
            let bytes = if prec == "f32" { 4 } else { 8 };
            let plan = GpuTridiagSolver::gtx480()
                .plan_geometry(m, n, bytes)
                .unwrap_or_else(|e| panic!("m={m} n={n}: {e}"));
            (format!("{fig} {prec} m={m} n={n}"), plan.describe())
        })
        .collect()
}

/// Regeneration helper for the plan-description goldens.
#[test]
#[ignore = "generator, not a check"]
fn regenerate_plans() {
    for (key, snap) in plan_sweep() {
        println!("=== {key} ===");
        print!("{snap}");
    }
    println!("=== end ===");
}

#[test]
fn sweep_plan_descriptions_match_goldens() {
    let golden = parse_golden(GOLDEN_PLANS);
    let actual = plan_sweep();
    assert_eq!(actual.len(), golden.len(), "sweep size");
    for ((key, snap), (gkey, gsnap)) in actual.iter().zip(&golden) {
        assert_eq!(key, gkey, "sweep order");
        assert_eq!(snap, gsnap, "solve plan drifted for {key}");
    }
}

#[test]
fn sweep_plan_json_is_schema_valid() {
    for &(_, prec, m, n) in SWEEP {
        let bytes = if prec == "f32" { 4 } else { 8 };
        let plan = GpuTridiagSolver::gtx480().plan_geometry(m, n, bytes).unwrap();
        let text = plan.to_json().to_string();
        let doc = gpu_sim::json::parse(&text)
            .unwrap_or_else(|e| panic!("m={m} n={n} {prec}: reparse failed: {e}"));
        let problems = tridiag_gpu::validate_plan_json(&doc);
        assert!(problems.is_empty(), "m={m} n={n} {prec}: {problems:?}");
    }
}

/// Plan-then-execute through a standalone [`PlanExecutor`] must be
/// byte-identical to `solve_batch` (which itself plans then executes),
/// and the report must carry exactly the plan that was built.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn plan_then_execute_reproduces_solve_batch() {
    for &(m, n) in &[(64usize, 512usize), (2048, 64), (16, 1024)] {
        let solver = GpuTridiagSolver::gtx480();
        let batch = random_batch::<f64>(m, n, SEED);
        let (x1, r1) = solver.solve_batch(&batch).unwrap();
        let plan = solver.plan_geometry(m, n, 8).unwrap();
        assert_eq!(r1.plan, plan, "m={m} n={n}: report carries a different plan");
        let mut ex = PlanExecutor::new(solver.spec().clone(), gpu_sim::ExecConfig::default());
        let (x2, r2) = ex.run(&plan, &batch).unwrap();
        assert_eq!(
            report_snapshot(&x1, &r1),
            report_snapshot(&x2, &r2),
            "m={m} n={n}: standalone executor drifted from solve_batch"
        );
    }
}

/// Split the `=== key ===`-delimited golden blob back into
/// (key, snapshot) pairs.
fn parse_golden(blob: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut key: Option<String> = None;
    let mut body = String::new();
    for line in blob.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(k) = trimmed.strip_prefix("=== ").and_then(|r| r.strip_suffix(" ===")) {
            if let Some(prev) = key.take() {
                out.push((prev, std::mem::take(&mut body)));
            }
            if k != "end" {
                key = Some(k.to_string());
            }
        } else {
            body.push_str(line);
            body.push('\n');
        }
    }
    out
}

/// Pinned `SolvePlan::describe()` output for every sweep point.
const GOLDEN_PLANS: &str = r#"
=== fig12 f64 m=64 n=512 ===
plan: m=64 n=512 f64 on GTX480
  k=6 mapping=BlockPerSystem fused=false layout=Contiguous
  buffers: 11 (360448 elems, 2883584 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (32768 elems)
     3. upload b -> buf[1] b (32768 elems)
     4. upload c -> buf[2] c (32768 elems)
     5. upload d -> buf[3] d (32768 elems)
     6. alloc buf[4] x (32768 elems)
     7. alloc buf[5] out_a (32768 elems)
     8. alloc buf[6] out_b (32768 elems)
     9. alloc buf[7] out_c (32768 elems)
    10. alloc buf[8] out_d (32768 elems)
    11. launch tiled_pcr grid=64 threads=64 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=6 sub_tile=64
    12. alloc buf[9] c_prime (32768 elems)
    13. alloc buf[10] d_prime (32768 elems)
    14. launch p_thomas grid=32 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 64, n: 512, k: 6 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== fig12 f64 m=256 n=512 ===
plan: m=256 n=512 f64 on GTX480
  k=6 mapping=BlockPerSystem fused=false layout=Contiguous
  buffers: 11 (1441792 elems, 11534336 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (131072 elems)
     3. upload b -> buf[1] b (131072 elems)
     4. upload c -> buf[2] c (131072 elems)
     5. upload d -> buf[3] d (131072 elems)
     6. alloc buf[4] x (131072 elems)
     7. alloc buf[5] out_a (131072 elems)
     8. alloc buf[6] out_b (131072 elems)
     9. alloc buf[7] out_c (131072 elems)
    10. alloc buf[8] out_d (131072 elems)
    11. launch tiled_pcr grid=256 threads=64 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=6 sub_tile=64
    12. alloc buf[9] c_prime (131072 elems)
    13. alloc buf[10] d_prime (131072 elems)
    14. launch p_thomas grid=128 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 256, n: 512, k: 6 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== fig12 f64 m=1024 n=512 ===
plan: m=1024 n=512 f64 on GTX480
  k=0 mapping=BlockPerSystem fused=false layout=Interleaved
  buffers: 7 (3670016 elems, 29360128 bytes device footprint)
  kernels: p_thomas
  steps:
     1. convert -> Interleaved
     2. upload a -> buf[0] a (524288 elems)
     3. upload b -> buf[1] b (524288 elems)
     4. upload c -> buf[2] c (524288 elems)
     5. upload d -> buf[3] d (524288 elems)
     6. alloc buf[4] x (524288 elems)
     7. alloc buf[5] c_prime (524288 elems)
     8. alloc buf[6] d_prime (524288 elems)
     9. launch p_thomas grid=8 threads=128 regs=24 binds=[0, 1, 2, 3, 5, 6, 4] map=Interleaved { m: 1024, n: 512 }
    10. download buf[4] x
    11. convert-back <- Interleaved
=== fig12 f64 m=64 n=2048 ===
plan: m=64 n=2048 f64 on GTX480
  k=6 mapping=BlockPerSystem fused=false layout=Contiguous
  buffers: 11 (1441792 elems, 11534336 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (131072 elems)
     3. upload b -> buf[1] b (131072 elems)
     4. upload c -> buf[2] c (131072 elems)
     5. upload d -> buf[3] d (131072 elems)
     6. alloc buf[4] x (131072 elems)
     7. alloc buf[5] out_a (131072 elems)
     8. alloc buf[6] out_b (131072 elems)
     9. alloc buf[7] out_c (131072 elems)
    10. alloc buf[8] out_d (131072 elems)
    11. launch tiled_pcr grid=64 threads=64 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=6 sub_tile=64
    12. alloc buf[9] c_prime (131072 elems)
    13. alloc buf[10] d_prime (131072 elems)
    14. launch p_thomas grid=32 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 64, n: 2048, k: 6 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== fig12 f64 m=256 n=2048 ===
plan: m=256 n=2048 f64 on GTX480
  k=6 mapping=BlockPerSystem fused=false layout=Contiguous
  buffers: 11 (5767168 elems, 46137344 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (524288 elems)
     3. upload b -> buf[1] b (524288 elems)
     4. upload c -> buf[2] c (524288 elems)
     5. upload d -> buf[3] d (524288 elems)
     6. alloc buf[4] x (524288 elems)
     7. alloc buf[5] out_a (524288 elems)
     8. alloc buf[6] out_b (524288 elems)
     9. alloc buf[7] out_c (524288 elems)
    10. alloc buf[8] out_d (524288 elems)
    11. launch tiled_pcr grid=256 threads=64 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=6 sub_tile=64
    12. alloc buf[9] c_prime (524288 elems)
    13. alloc buf[10] d_prime (524288 elems)
    14. launch p_thomas grid=128 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 256, n: 2048, k: 6 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== fig13 f64 m=2048 n=64 ===
plan: m=2048 n=64 f64 on GTX480
  k=0 mapping=BlockPerSystem fused=false layout=Interleaved
  buffers: 7 (917504 elems, 7340032 bytes device footprint)
  kernels: p_thomas
  steps:
     1. convert -> Interleaved
     2. upload a -> buf[0] a (131072 elems)
     3. upload b -> buf[1] b (131072 elems)
     4. upload c -> buf[2] c (131072 elems)
     5. upload d -> buf[3] d (131072 elems)
     6. alloc buf[4] x (131072 elems)
     7. alloc buf[5] c_prime (131072 elems)
     8. alloc buf[6] d_prime (131072 elems)
     9. launch p_thomas grid=16 threads=128 regs=24 binds=[0, 1, 2, 3, 5, 6, 4] map=Interleaved { m: 2048, n: 64 }
    10. download buf[4] x
    11. convert-back <- Interleaved
=== fig13 f64 m=256 n=256 ===
plan: m=256 n=256 f64 on GTX480
  k=6 mapping=BlockPerSystem fused=false layout=Contiguous
  buffers: 11 (720896 elems, 5767168 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (65536 elems)
     3. upload b -> buf[1] b (65536 elems)
     4. upload c -> buf[2] c (65536 elems)
     5. upload d -> buf[3] d (65536 elems)
     6. alloc buf[4] x (65536 elems)
     7. alloc buf[5] out_a (65536 elems)
     8. alloc buf[6] out_b (65536 elems)
     9. alloc buf[7] out_c (65536 elems)
    10. alloc buf[8] out_d (65536 elems)
    11. launch tiled_pcr grid=256 threads=64 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=6 sub_tile=64
    12. alloc buf[9] c_prime (65536 elems)
    13. alloc buf[10] d_prime (65536 elems)
    14. launch p_thomas grid=128 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 256, n: 256, k: 6 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== fig13 f64 m=16 n=1024 ===
plan: m=16 n=1024 f64 on GTX480
  k=7 mapping=BlockGroupPerSystem(2) fused=false layout=Contiguous
  buffers: 11 (180224 elems, 1441792 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (16384 elems)
     3. upload b -> buf[1] b (16384 elems)
     4. upload c -> buf[2] c (16384 elems)
     5. upload d -> buf[3] d (16384 elems)
     6. alloc buf[4] x (16384 elems)
     7. alloc buf[5] out_a (16384 elems)
     8. alloc buf[6] out_b (16384 elems)
     9. alloc buf[7] out_c (16384 elems)
    10. alloc buf[8] out_d (16384 elems)
    11. launch tiled_pcr grid=32 threads=128 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=7 sub_tile=128
    12. alloc buf[9] c_prime (16384 elems)
    13. alloc buf[10] d_prime (16384 elems)
    14. launch p_thomas grid=16 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 16, n: 1024, k: 7 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== fig13 f64 m=1 n=16384 ===
plan: m=1 n=16384 f64 on GTX480
  k=8 mapping=BlockGroupPerSystem(16) fused=false layout=Contiguous
  buffers: 11 (180224 elems, 1441792 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (16384 elems)
     3. upload b -> buf[1] b (16384 elems)
     4. upload c -> buf[2] c (16384 elems)
     5. upload d -> buf[3] d (16384 elems)
     6. alloc buf[4] x (16384 elems)
     7. alloc buf[5] out_a (16384 elems)
     8. alloc buf[6] out_b (16384 elems)
     9. alloc buf[7] out_c (16384 elems)
    10. alloc buf[8] out_d (16384 elems)
    11. launch tiled_pcr grid=16 threads=256 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=8 sub_tile=256
    12. alloc buf[9] c_prime (16384 elems)
    13. alloc buf[10] d_prime (16384 elems)
    14. launch p_thomas grid=2 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 1, n: 16384, k: 8 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== fig12 f32 m=256 n=512 ===
plan: m=256 n=512 f32 on GTX480
  k=6 mapping=BlockPerSystem fused=false layout=Contiguous
  buffers: 11 (1441792 elems, 5767168 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (131072 elems)
     3. upload b -> buf[1] b (131072 elems)
     4. upload c -> buf[2] c (131072 elems)
     5. upload d -> buf[3] d (131072 elems)
     6. alloc buf[4] x (131072 elems)
     7. alloc buf[5] out_a (131072 elems)
     8. alloc buf[6] out_b (131072 elems)
     9. alloc buf[7] out_c (131072 elems)
    10. alloc buf[8] out_d (131072 elems)
    11. launch tiled_pcr grid=256 threads=64 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=6 sub_tile=64
    12. alloc buf[9] c_prime (131072 elems)
    13. alloc buf[10] d_prime (131072 elems)
    14. launch p_thomas grid=128 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 256, n: 512, k: 6 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== fig13 f32 m=16 n=1024 ===
plan: m=16 n=1024 f32 on GTX480
  k=7 mapping=BlockGroupPerSystem(2) fused=false layout=Contiguous
  buffers: 11 (180224 elems, 720896 bytes device footprint)
  kernels: tiled_pcr -> p_thomas
  steps:
     1. convert -> Contiguous
     2. upload a -> buf[0] a (16384 elems)
     3. upload b -> buf[1] b (16384 elems)
     4. upload c -> buf[2] c (16384 elems)
     5. upload d -> buf[3] d (16384 elems)
     6. alloc buf[4] x (16384 elems)
     7. alloc buf[5] out_a (16384 elems)
     8. alloc buf[6] out_b (16384 elems)
     9. alloc buf[7] out_c (16384 elems)
    10. alloc buf[8] out_d (16384 elems)
    11. launch tiled_pcr grid=32 threads=128 regs=32 binds=[0, 1, 2, 3, 5, 6, 7, 8] k=7 sub_tile=128
    12. alloc buf[9] c_prime (16384 elems)
    13. alloc buf[10] d_prime (16384 elems)
    14. launch p_thomas grid=16 threads=128 regs=24 binds=[5, 6, 7, 8, 9, 10, 4] map=HybridSubsystems { m: 16, n: 1024, k: 7 }
    15. download buf[4] x
    16. convert-back <- Contiguous
=== end ===
"#;

/// Captured from the pre-refactor monolithic `solve_batch` (seed 42).
const GOLDEN_REPORTS: &str = r#"
=== fig12 f64 m=64 n=512 ===
k=6 mapping=BlockPerSystem fused=false precision=f64 total_us=91.59694555427072 sol=0x812ca342a79bb1cb
kernel=tiled_pcr blocks=64 shared=10144 total_us=73.29764453961457 launch_us=5.0 bound=Compute
  phase=window_init us=0.14275517487508924 flops=0 gbytes=0 gtxn=0 rounds=0 sh=512 replays=1216 barriers=64
  phase=carry_init us=0.0 flops=0 gbytes=0 gtxn=0 rounds=0 sh=0 replays=0 barriers=0
  phase=window_load us=0.6745182012847966 flops=0 gbytes=1048576 gtxn=8192 rounds=2048 sh=2304 replays=4608 barriers=576
  phase=splice us=4.817987152034261 flops=0 gbytes=0 gtxn=0 rounds=0 sh=27648 replays=13824 barriers=3456
  phase=pcr_level us=61.2847965738758 flops=3096576 gbytes=0 gtxn=0 rounds=0 sh=82944 replays=124416 barriers=6912
  phase=emit us=0.9600285510349751 flops=0 gbytes=1048576 gtxn=8192 rounds=2048 sh=4352 replays=5632 barriers=576
  phase=carry_roll us=0.4175588865096387 flops=0 gbytes=0 gtxn=0 rounds=0 sh=2304 replays=0 barriers=576
kernel=p_thomas blocks=32 shared=0 total_us=18.299301014656145 launch_us=5.0 bound=Bandwidth
  phase=forward us=8.86620067643743 flops=262144 gbytes=1572864 gtxn=12288 rounds=1536 sh=0 replays=0 barriers=0
  phase=backward us=4.433100338218715 flops=65536 gbytes=786432 gtxn=6144 rounds=768 sh=0 replays=0 barriers=0
=== fig12 f64 m=256 n=512 ===
k=6 mapping=BlockPerSystem fused=false precision=f64 total_us=297.5477099781648 sol=0x0f90dddcead52439
kernel=tiled_pcr blocks=256 shared=10144 total_us=238.1226266952177 launch_us=5.0 bound=Compute
  phase=window_init us=0.4872709969069712 flops=0 gbytes=0 gtxn=0 rounds=0 sh=2048 replays=4864 barriers=256
  phase=carry_init us=0.0 flops=0 gbytes=0 gtxn=0 rounds=0 sh=0 replays=0 barriers=0
  phase=window_load us=2.3023554603854386 flops=0 gbytes=4194304 gtxn=32768 rounds=8192 sh=9216 replays=18432 barriers=2304
  phase=splice us=16.445396145610278 flops=0 gbytes=0 gtxn=0 rounds=0 sh=110592 replays=55296 barriers=13824
  phase=pcr_level us=209.18543897216273 flops=12386304 gbytes=0 gtxn=0 rounds=0 sh=331776 replays=497664 barriers=27648
  phase=emit us=3.276897454199381 flops=0 gbytes=4194304 gtxn=32768 rounds=8192 sh=17408 replays=22528 barriers=2304
  phase=carry_roll us=1.4252676659529016 flops=0 gbytes=0 gtxn=0 rounds=0 sh=9216 replays=0 barriers=2304
kernel=p_thomas blocks=128 shared=0 total_us=59.425083282947114 launch_us=5.0 bound=Bandwidth
  phase=forward us=36.28338885529807 flops=1048576 gbytes=6291456 gtxn=49152 rounds=6144 sh=0 replays=0 barriers=0
  phase=backward us=18.141694427649043 flops=262144 gbytes=3145728 gtxn=24576 rounds=3072 sh=0 replays=0 barriers=0
=== fig12 f64 m=1024 n=512 ===
k=0 mapping=BlockPerSystem fused=false precision=f64 total_us=333.90792291220555 sol=0x50f34aac6855cfa2
kernel=p_thomas blocks=8 shared=0 total_us=333.90792291220555 launch_us=5.0 bound=Latency
  phase=forward us=219.27194860813702 flops=4194304 gbytes=25165824 gtxn=196608 rounds=24576 sh=0 replays=0 barriers=0
  phase=backward us=109.63597430406853 flops=1048576 gbytes=12582912 gtxn=98304 rounds=12288 sh=0 replays=0 barriers=0
=== fig12 f64 m=64 n=2048 ===
k=6 mapping=BlockPerSystem fused=false precision=f64 total_us=313.4220434590528 sol=0xb608ad9d2a5287f4
kernel=tiled_pcr blocks=64 shared=10144 total_us=255.22483940042827 launch_us=5.0 bound=Compute
  phase=window_init us=0.14275517487508924 flops=0 gbytes=0 gtxn=0 rounds=0 sh=512 replays=1216 barriers=64
  phase=carry_init us=0.0 flops=0 gbytes=0 gtxn=0 rounds=0 sh=0 replays=0 barriers=0
  phase=window_load us=2.473233404710921 flops=0 gbytes=4194304 gtxn=32768 rounds=8192 sh=8448 replays=16896 barriers=2112
  phase=splice us=17.66595289079229 flops=0 gbytes=0 gtxn=0 rounds=0 sh=101376 replays=50688 barriers=12672
  phase=pcr_level us=224.71092077087795 flops=11354112 gbytes=0 gtxn=0 rounds=0 sh=304128 replays=456192 barriers=25344
  phase=emit us=3.700927908636688 flops=0 gbytes=4194304 gtxn=32768 rounds=8192 sh=16640 replays=22528 barriers=2112
  phase=carry_roll us=1.5310492505353182 flops=0 gbytes=0 gtxn=0 rounds=0 sh=8448 replays=0 barriers=2112
kernel=p_thomas blocks=32 shared=0 total_us=58.19720405862458 launch_us=5.0 bound=Bandwidth
  phase=forward us=35.46480270574972 flops=1048576 gbytes=6291456 gtxn=49152 rounds=6144 sh=0 replays=0 barriers=0
  phase=backward us=17.73240135287486 flops=262144 gbytes=3145728 gtxn=24576 rounds=3072 sh=0 replays=0 barriers=0
=== fig12 f64 m=256 n=2048 ===
k=6 mapping=BlockPerSystem fused=false precision=f64 total_us=1081.8011182852501 sol=0xb03456b6654f3cda
kernel=tiled_pcr blocks=256 shared=10144 total_us=859.1007851534617 launch_us=5.0 bound=Compute
  phase=window_init us=0.4872709969069712 flops=0 gbytes=0 gtxn=0 rounds=0 sh=2048 replays=4864 barriers=256
  phase=carry_init us=0.0 flops=0 gbytes=0 gtxn=0 rounds=0 sh=0 replays=0 barriers=0
  phase=window_load us=8.441970021413276 flops=0 gbytes=16777216 gtxn=131072 rounds=32768 sh=33792 replays=67584 barriers=8448
  phase=splice us=60.29978586723768 flops=0 gbytes=0 gtxn=0 rounds=0 sh=405504 replays=202752 barriers=50688
  phase=pcr_level us=767.0132762312633 flops=45416448 gbytes=0 gtxn=0 rounds=0 sh=1216512 replays=1824768 barriers=101376
  phase=emit us=12.632500594813228 flops=0 gbytes=16777216 gtxn=131072 rounds=32768 sh=66560 replays=90112 barriers=8448
  phase=carry_roll us=5.225981441827344 flops=0 gbytes=0 gtxn=0 rounds=0 sh=33792 replays=0 barriers=8448
kernel=p_thomas blocks=128 shared=0 total_us=222.70033313178845 launch_us=5.0 bound=Bandwidth
  phase=forward us=145.13355542119228 flops=4194304 gbytes=25165824 gtxn=196608 rounds=24576 sh=0 replays=0 barriers=0
  phase=backward us=72.56677771059617 flops=1048576 gbytes=12582912 gtxn=98304 rounds=12288 sh=0 replays=0 barriers=0
=== fig13 f64 m=2048 n=64 ===
k=0 mapping=BlockPerSystem fused=false precision=f64 total_us=58.19720405862458 sol=0x963149727eca929b
kernel=p_thomas blocks=16 shared=0 total_us=58.19720405862458 launch_us=5.0 bound=Bandwidth
  phase=forward us=35.46480270574972 flops=1048576 gbytes=6291456 gtxn=49152 rounds=6144 sh=0 replays=0 barriers=0
  phase=backward us=17.73240135287486 flops=262144 gbytes=3145728 gtxn=24576 rounds=3072 sh=0 replays=0 barriers=0
=== fig13 f64 m=256 n=256 ===
k=6 mapping=BlockPerSystem fused=false precision=f64 total_us=166.83880859365058 sol=0xb7922e19655b7571
kernel=tiled_pcr blocks=256 shared=10144 total_us=134.62626695217702 launch_us=5.0 bound=Compute
  phase=window_init us=0.48727099690697123 flops=0 gbytes=0 gtxn=0 rounds=0 sh=2048 replays=4864 barriers=256
  phase=carry_init us=0.0 flops=0 gbytes=0 gtxn=0 rounds=0 sh=0 replays=0 barriers=0
  phase=window_load us=1.2790863668807995 flops=0 gbytes=2097152 gtxn=16384 rounds=4096 sh=5120 replays=10240 barriers=1280
  phase=splice us=9.136331192005711 flops=0 gbytes=0 gtxn=0 rounds=0 sh=61440 replays=30720 barriers=7680
  phase=pcr_level us=116.21413276231263 flops=6881280 gbytes=0 gtxn=0 rounds=0 sh=184320 replays=276480 barriers=15360
  phase=emit us=1.7176302640970735 flops=0 gbytes=2097152 gtxn=16384 rounds=4096 sh=9216 replays=11264 barriers=1280
  phase=carry_roll us=0.7918153699738468 flops=0 gbytes=0 gtxn=0 rounds=0 sh=5120 replays=0 barriers=1280
kernel=p_thomas blocks=128 shared=0 total_us=32.21254164147356 launch_us=5.0 bound=Bandwidth
  phase=forward us=18.141694427649036 flops=524288 gbytes=3145728 gtxn=24576 rounds=3072 sh=0 replays=0 barriers=0
  phase=backward us=9.070847213824521 flops=131072 gbytes=1572864 gtxn=12288 rounds=1536 sh=0 replays=0 barriers=0
=== fig13 f64 m=16 n=1024 ===
k=7 mapping=BlockGroupPerSystem(2) fused=false precision=f64 total_us=74.79311945807754 sol=0x4db375949b24ebc9
kernel=tiled_pcr blocks=32 shared=20384 total_us=63.143468950749465 launch_us=5.0 bound=Compute
  phase=window_init us=0.16488222698072805 flops=0 gbytes=0 gtxn=0 rounds=0 sh=256 replays=1120 barriers=32
  phase=carry_init us=0.0 flops=0 gbytes=0 gtxn=0 rounds=0 sh=0 replays=0 barriers=0
  phase=window_load us=0.49464668094218417 flops=0 gbytes=654336 gtxn=6336 rounds=640 sh=704 replays=2816 barriers=176
  phase=splice us=4.122055674518202 flops=0 gbytes=0 gtxn=0 rounds=0 sh=9856 replays=9856 barriers=1232
  phase=pcr_level us=52.432548179871524 flops=2207744 gbytes=0 gtxn=0 rounds=0 sh=29568 replays=88704 barriers=2464
  phase=emit us=0.6231263383297645 flops=0 gbytes=524288 gtxn=5120 rounds=576 sh=1280 replays=2432 barriers=176
  phase=carry_roll us=0.3062098501070665 flops=0 gbytes=0 gtxn=0 rounds=0 sh=704 replays=0 barriers=176
kernel=p_thomas blocks=16 shared=0 total_us=11.649650507328072 launch_us=5.0 bound=Bandwidth
  phase=forward us=4.433100338218715 flops=131072 gbytes=786432 gtxn=6144 rounds=768 sh=0 replays=0 barriers=0
  phase=backward us=2.2165501691093574 flops=32768 gbytes=393216 gtxn=3072 rounds=384 sh=0 replays=0 barriers=0
=== fig13 f64 m=1 n=16384 ===
k=8 mapping=BlockGroupPerSystem(16) fused=false precision=f64 total_us=146.54434927432786 sol=0xaf4713a3f588f938
kernel=tiled_pcr blocks=16 shared=40864 total_us=100.43085891030216 launch_us=5.0 bound=Compute
  phase=window_init us=0.21623657917633304 flops=0 gbytes=0 gtxn=0 rounds=0 sh=128 replays=1072 barriers=16
  phase=carry_init us=0.0 flops=0 gbytes=0 gtxn=0 rounds=0 sh=0 replays=0 barriers=0
  phase=window_load us=0.7142251249284509 flops=0 gbytes=769088 gtxn=8804 rounds=376 sh=380 replays=3040 barriers=95
  phase=splice us=6.734122606468253 flops=0 gbytes=0 gtxn=0 rounds=0 sh=6080 replays=11400 barriers=760
  phase=pcr_level us=86.45525083657725 flops=2723840 gbytes=0 gtxn=0 rounds=0 sh=18240 replays=108680 barriers=1520
  phase=emit us=0.8688844001009276 flops=0 gbytes=524288 gtxn=6016 rounds=316 sh=696 replays=2240 barriers=95
  phase=carry_roll us=0.4421393630509556 flops=0 gbytes=0 gtxn=0 rounds=0 sh=380 replays=0 barriers=95
kernel=p_thomas blocks=2 shared=0 total_us=46.113490364025694 launch_us=5.0 bound=Latency
  phase=forward us=27.408993576017128 flops=131072 gbytes=786432 gtxn=6144 rounds=768 sh=0 replays=0 barriers=0
  phase=backward us=13.704496788008566 flops=32768 gbytes=393216 gtxn=3072 rounds=384 sh=0 replays=0 barriers=0
=== fig12 f32 m=256 n=512 ===
k=6 mapping=BlockPerSystem fused=false precision=f32 total_us=107.45265584561346 sol=0x5fd9a62fbcfdf5ea
kernel=tiled_pcr blocks=256 shared=5072 total_us=75.2401142041399 launch_us=5.0 bound=Compute
  phase=window_init us=0.261908160837497 flops=0 gbytes=0 gtxn=0 rounds=0 sh=2048 replays=768 barriers=256
  phase=carry_init us=0.0 flops=0 gbytes=0 gtxn=0 rounds=0 sh=0 replays=0 barriers=0
  phase=window_load us=1.1511777301927195 flops=0 gbytes=2097152 gtxn=16384 rounds=8192 sh=9216 replays=0 barriers=2304
  phase=splice us=12.169593147751605 flops=0 gbytes=0 gtxn=0 rounds=0 sh=110592 replays=0 barriers=13824
  phase=pcr_level us=53.2830835117773 flops=12386304 gbytes=0 gtxn=0 rounds=0 sh=331776 replays=0 barriers=27648
  phase=emit us=2.2231739233880563 flops=0 gbytes=2097152 gtxn=16384 rounds=8192 sh=17408 replays=6144 barriers=2304
  phase=carry_roll us=1.151177730192714 flops=0 gbytes=0 gtxn=0 rounds=0 sh=9216 replays=0 barriers=2304
kernel=p_thomas blocks=128 shared=0 total_us=32.21254164147356 launch_us=5.0 bound=Bandwidth
  phase=forward us=18.141694427649036 flops=1048576 gbytes=3145728 gtxn=24576 rounds=6144 sh=0 replays=0 barriers=0
  phase=backward us=9.070847213824521 flops=262144 gbytes=1572864 gtxn=12288 rounds=3072 sh=0 replays=0 barriers=0
=== fig13 f32 m=16 n=1024 ===
k=7 mapping=BlockGroupPerSystem(2) fused=false precision=f32 total_us=27.521960504401616 sol=0xdefe7bbcc51abc33
kernel=tiled_pcr blocks=32 shared=10192 total_us=17.382774208898404 launch_us=5.0 bound=Compute
  phase=window_init us=0.06090887461337139 flops=0 gbytes=0 gtxn=0 rounds=0 sh=256 replays=96 barriers=32
  phase=carry_init us=0.0 flops=0 gbytes=0 gtxn=0 rounds=0 sh=0 replays=0 barriers=0
  phase=window_load us=0.1758743754461099 flops=0 gbytes=327168 gtxn=3776 rounds=640 sh=704 replays=0 barriers=176
  phase=splice us=2.1691172971686883 flops=0 gbytes=0 gtxn=0 rounds=0 sh=9856 replays=0 barriers=1232
  phase=pcr_level us=9.497216274089935 flops=2207744 gbytes=0 gtxn=0 rounds=0 sh=29568 replays=0 barriers=2464
  phase=emit us=0.3037830121341898 flops=0 gbytes=262144 gtxn=3072 rounds=576 sh=1280 replays=384 barriers=176
  phase=carry_roll us=0.17587437544611007 flops=0 gbytes=0 gtxn=0 rounds=0 sh=704 replays=0 barriers=176
kernel=p_thomas blocks=16 shared=0 total_us=10.139186295503212 launch_us=5.0 bound=Latency
  phase=forward us=3.426124197002141 flops=131072 gbytes=393216 gtxn=3072 rounds=768 sh=0 replays=0 barriers=0
  phase=backward us=1.7130620985010707 flops=32768 gbytes=196608 gtxn=1536 rounds=384 sh=0 replays=0 barriers=0
=== end ===
"#;
