//! The layout-aware-planning acceptance gate.
//!
//! Three properties, executed on the simulator (never just asserted on
//! the model's own arithmetic):
//!
//! 1. Whenever the transaction cost model selects the interleaved
//!    p-Thomas path for a sweep geometry, the *measured* global
//!    transaction count of the executed kernel equals the closed-form
//!    coalesced minimum exactly — forward `6·n·cm(m)`, backward
//!    `3·n·cm(m)` with `cm` = [`coalesced_minimum`] per 128-byte
//!    segment.
//! 2. Forced-layout plans (both pins) carry exact resource
//!    certificates: the static verifier is clean and the certificate
//!    cross-checks against measured H2D/D2H/peak stats bit-exactly,
//!    single-device and sharded D ∈ {2, 4}.
//! 3. A batch handed over pre-interleaved solves through the
//!    conversion-elided plan to the same bits as the contiguous-host
//!    solve of the same systems.

use gpu_sim::lint::coalesce::coalesced_minimum;
use gpu_sim::{DeviceGroup, DeviceSpec};
use tridiag_core::generators::random_batch;
use tridiag_core::Layout;
use tridiag_gpu::solver::{CostModel, GpuSolverConfig, GpuTridiagSolver, LayoutChoice};
use tridiag_gpu::GpuScalar;

/// The CLI sweep geometries (Fig. 12/13).
const GEOMETRIES: &[(usize, usize)] = &[
    (64, 512),
    (256, 512),
    (1024, 512),
    (64, 2048),
    (256, 2048),
    (2048, 64),
    (256, 256),
    (16, 1024),
    (1, 16384),
];

fn transactions_solver(spec: DeviceSpec) -> GpuTridiagSolver {
    GpuTridiagSolver::new(
        spec,
        GpuSolverConfig {
            cost: CostModel::Transactions,
            // Lint every launch so the static predictions cross-check
            // the measured counters on the same run.
            exec: gpu_sim::ExecConfig::planned(),
            ..Default::default()
        },
    )
}

/// Execute one interleaved-chosen point and check the measured
/// p-Thomas transaction counts against the closed-form floor.
fn check_coalesced_floor<S: GpuScalar>(m: usize, n: usize) {
    let spec = DeviceSpec::gtx480();
    let solver = transactions_solver(spec.clone());
    let batch = random_batch::<S>(m, n, 42);
    let (_, report) = solver.solve_batch(&batch).unwrap();
    assert!(
        report.is_lint_clean(),
        "m={m} n={n}: lint predictions drifted from measured counters"
    );
    let elem_bytes = <S as gpu_sim::Elem>::BYTES;
    let cm = coalesced_minimum(m, spec.warp_size as usize, elem_bytes, spec.transaction_bytes);
    let kr = report
        .kernels
        .iter()
        .find(|k| k.timing.name == "p_thomas")
        .unwrap_or_else(|| panic!("m={m} n={n}: no p_thomas kernel in the report"));
    for (label, accesses_per_row) in [("forward", 6u64), ("backward", 3u64)] {
        let phase = kr
            .timing
            .phases
            .iter()
            .find(|p| p.label == label)
            .unwrap_or_else(|| panic!("m={m} n={n}: no {label} phase"));
        let expected = accesses_per_row * n as u64 * cm;
        assert_eq!(
            phase.stats.global_transactions(),
            expected,
            "m={m} n={n} {}: measured {label} transactions != closed-form \
             coalesced minimum {accesses_per_row}*n*cm({m})",
            S::NAME,
        );
    }
}

/// Property 1: every sweep geometry the cost model routes to the
/// interleaved p-Thomas path hits the coalesced floor exactly, at both
/// scalar widths.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn interleaved_choices_hit_the_coalesced_floor() {
    let spec = DeviceSpec::gtx480();
    let solver = transactions_solver(spec.clone());
    let mut interleaved_points = 0usize;
    for &(m, n) in GEOMETRIES {
        for bytes in [8usize, 4] {
            let plan = solver.plan_geometry(m, n, bytes).unwrap();
            if plan.layout != Layout::Interleaved {
                continue;
            }
            assert_eq!(plan.k, 0, "m={m} n={n}: interleaved plans are pure p-Thomas");
            interleaved_points += 1;
            if bytes == 4 {
                check_coalesced_floor::<f32>(m, n);
            } else {
                check_coalesced_floor::<f64>(m, n);
            }
        }
    }
    assert!(
        interleaved_points >= 2,
        "cost model never picked interleaved on the sweep — gate is vacuous"
    );
}

/// Run one point under `config` (the batch pre-interleaved when the
/// layout pin asks for it) and demand a clean verifier report plus an
/// exact certificate cross-check.
fn assert_exact_certificate<S: GpuScalar>(
    config: GpuSolverConfig,
    group: Option<&DeviceGroup>,
    m: usize,
    n: usize,
) {
    let spec = DeviceSpec::gtx480();
    let solver = GpuTridiagSolver::new(spec, config);
    let batch = random_batch::<S>(m, n, 42);
    let batch = if config.layout == LayoutChoice::Interleaved {
        batch.to_layout(Layout::Interleaved)
    } else {
        batch
    };
    let (x, report) = match group {
        Some(g) => solver.solve_batch_group(g, &batch),
        None => solver.solve_batch(&batch),
    }
    .unwrap_or_else(|e| panic!("m={m} n={n} {:?}: {e}", config.layout));
    assert!(
        report.verify.findings.is_empty(),
        "m={m} n={n} {:?}: static findings: {:?}",
        config.layout,
        report.verify.findings
    );
    assert!(
        report.verify_mismatches.is_empty(),
        "m={m} n={n} {:?}: certificate drifted from measured stats: {:?}",
        config.layout,
        report.verify_mismatches
    );
    let resid = batch.max_relative_residual(&x).unwrap();
    assert!(
        resid < 1e-6,
        "m={m} n={n} {:?}: residual {resid:.3e}",
        config.layout
    );
}

/// Property 2: forced-layout plans certify exactly — both pins,
/// single-device and sharded D ∈ {2, 4}.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn forced_layouts_carry_exact_certificates() {
    const POINTS: &[(usize, usize)] = &[(64, 512), (1024, 512), (2048, 64)];
    let spec = DeviceSpec::gtx480();
    for choice in [LayoutChoice::Contiguous, LayoutChoice::Interleaved] {
        let config = GpuSolverConfig {
            layout: choice,
            ..Default::default()
        };
        for &(m, n) in POINTS {
            assert_exact_certificate::<f64>(config, None, m, n);
            for devices in [2usize, 4] {
                let group = DeviceGroup::homogeneous(spec.clone(), devices).unwrap();
                assert_exact_certificate::<f64>(config, Some(&group), m, n);
            }
        }
    }
}

/// Property 3: the conversion-elided interleaved solve is bit-identical
/// to the contiguous-host solve of the same systems.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
fn elided_interleaved_solve_matches_contiguous_bits() {
    for &(m, n) in &[(1024usize, 512usize), (2048, 64)] {
        let spec = DeviceSpec::gtx480();
        let contig = random_batch::<f64>(m, n, 42);
        let inter = contig.to_layout(Layout::Interleaved);

        let auto = GpuTridiagSolver::new(spec.clone(), GpuSolverConfig::default());
        let (x_contig, r_contig) = auto.solve_batch(&contig).unwrap();

        let forced = GpuTridiagSolver::new(
            spec,
            GpuSolverConfig {
                layout: LayoutChoice::Interleaved,
                ..Default::default()
            },
        );
        let (x_inter, r_inter) = forced.solve_batch(&inter).unwrap();
        // The elided plan really elided: no layout conversions at all.
        assert!(
            !r_inter
                .plan
                .steps
                .iter()
                .any(|s| matches!(s, tridiag_gpu::Step::Convert { .. }
                    | tridiag_gpu::Step::ConvertBack { .. })),
            "m={m} n={n}: forced-interleaved plan kept its Convert steps"
        );
        // Same layout decision on the device either way at these
        // geometries (the heuristic already picks interleaved), so the
        // kernel math is identical and the bits must agree.
        assert_eq!(r_contig.plan.layout, Layout::Interleaved, "m={m} n={n}");
        for sys in 0..m {
            for row in 0..n {
                let a = x_contig[sys * n + row];
                let b = x_inter[row * m + sys];
                assert!(
                    a.to_bits() == b.to_bits(),
                    "m={m} n={n} sys={sys} row={row}: {a:?} != {b:?}"
                );
            }
        }
    }
}
