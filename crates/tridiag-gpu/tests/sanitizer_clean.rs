//! The whole kernel zoo must run clean under the sanitizer: no shared
//! races, no out-of-bounds lanes, no uninitialized reads, no divergent
//! barriers — across every mapping variant and both precisions.

use gpu_sim::exec::launch_with;
use gpu_sim::{DeviceSpec, ExecConfig, GpuMemory, LaunchConfig, LaunchResult};
use tridiag_gpu::buffers::upload;
use tridiag_gpu::kernels::cr_shared::CrSharedKernel;
use tridiag_gpu::kernels::fused::FusedKernel;
use tridiag_gpu::kernels::p_thomas::{AddrMap, PThomasKernel};
use tridiag_gpu::kernels::pcr_shared::PcrSharedKernel;
use tridiag_gpu::kernels::tiled_pcr::TiledPcrKernel;
use tridiag_core::generators::random_batch;
use tridiag_core::Layout;

fn assert_clean(res: &LaunchResult, ctx: &str) {
    assert!(
        res.stats.total.sanitizer.is_clean(),
        "{ctx}: sanitizer counts {:?}\nfirst reports:\n{}",
        res.stats.total.sanitizer,
        res.violations
            .iter()
            .take(5)
            .map(|v| format!("  - {v}"))
            .collect::<Vec<_>>()
            .join("\n"),
    );
    assert!(res.violations.is_empty(), "{ctx}: {:?}", res.violations);
}

fn exec() -> ExecConfig {
    ExecConfig::sanitized()
}

#[test]
fn pcr_shared_is_clean() {
    let (m, n) = (3usize, 128usize);
    let host = random_batch::<f64>(m, n, 11);
    let mut mem = GpuMemory::new();
    let dev = upload(&mut mem, &host);
    let kernel = PcrSharedKernel {
        input: [dev.a, dev.b, dev.c, dev.d],
        x: dev.x,
        n,
        steps: None,
    };
    let cfg = LaunchConfig::new("pcr_shared", m, 128);
    let res = launch_with(&DeviceSpec::gtx480(), &cfg, &exec(), &kernel, &mut mem).unwrap();
    assert_clean(&res, "pcr_shared");
    assert!(host.max_relative_residual(mem.read(dev.x).unwrap()).unwrap() < 1e-9);
}

#[test]
fn cr_shared_is_clean_padded_and_plain() {
    for padded in [false, true] {
        let (m, n) = (2usize, 256usize);
        let host = random_batch::<f64>(m, n, 13);
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        let kernel = CrSharedKernel {
            input: [dev.a, dev.b, dev.c, dev.d],
            x: dev.x,
            n,
            padded,
        };
        let cfg = LaunchConfig::new("cr_shared", m, 128);
        let res = launch_with(&DeviceSpec::gtx480(), &cfg, &exec(), &kernel, &mut mem).unwrap();
        assert_clean(&res, &format!("cr_shared padded={padded}"));
    }
}

#[test]
fn tiled_pcr_is_clean_across_mappings() {
    for (name, m, n, k, c, assignments, threads) in [
        (
            "11a",
            3usize,
            100usize,
            3u32,
            2usize,
            TiledPcrKernel::assign_block_per_system(3, 100),
            1u32 << 3,
        ),
        (
            "11b",
            1,
            256,
            3,
            1,
            TiledPcrKernel::assign_block_group_per_system(1, 256, 4),
            1u32 << 3,
        ),
        (
            "11c",
            4,
            64,
            2,
            1,
            TiledPcrKernel::assign_multi_system_per_block(4, 64, 2),
            2u32 << 2,
        ),
    ] {
        let host = random_batch::<f64>(m, n, 17);
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        let out = [
            mem.alloc(m * n),
            mem.alloc(m * n),
            mem.alloc(m * n),
            mem.alloc(m * n),
        ];
        let blocks = assignments.len();
        let kernel = TiledPcrKernel {
            input: [dev.a, dev.b, dev.c, dev.d],
            output: out,
            n,
            k,
            sub_tile: c << k,
            assignments,
        };
        let cfg = LaunchConfig::new("tiled_pcr", blocks, threads);
        let res = launch_with(&DeviceSpec::gtx480(), &cfg, &exec(), &kernel, &mut mem).unwrap();
        assert_clean(&res, &format!("tiled_pcr {name}"));
    }
}

#[test]
fn p_thomas_is_clean_interleaved_and_hybrid() {
    let (m, n) = (64usize, 64usize);
    let host = random_batch::<f64>(m, n, 19).to_layout(Layout::Interleaved);
    let mut mem = GpuMemory::new();
    let dev = upload(&mut mem, &host);
    let cp = mem.alloc(dev.total());
    let dp = mem.alloc(dev.total());
    let kernel = PThomasKernel {
        a: dev.a,
        b: dev.b,
        c: dev.c,
        d: dev.d,
        c_prime: cp,
        d_prime: dp,
        x: dev.x,
        map: AddrMap::Interleaved { m, n },
    };
    let cfg = LaunchConfig::new("p_thomas", 2, 32);
    let res = launch_with(&DeviceSpec::gtx480(), &cfg, &exec(), &kernel, &mut mem).unwrap();
    assert_clean(&res, "p_thomas interleaved");
}

#[test]
fn fused_is_clean() {
    let (m, n, k, c) = (2usize, 200usize, 3u32, 2usize);
    let host = random_batch::<f64>(m, n, 23);
    let mut mem = GpuMemory::new();
    let dev = upload(&mut mem, &host);
    let cp = mem.alloc(m * n);
    let dp = mem.alloc(m * n);
    let kernel = FusedKernel {
        input: [dev.a, dev.b, dev.c, dev.d],
        c_prime: cp,
        d_prime: dp,
        x: dev.x,
        n,
        k,
        sub_tile: c << k,
        m,
    };
    let cfg = LaunchConfig::new("fused", m, 1 << k);
    let res = launch_with(&DeviceSpec::gtx480(), &cfg, &exec(), &kernel, &mut mem).unwrap();
    assert_clean(&res, "fused");
    assert!(host.max_relative_residual(mem.read(dev.x).unwrap()).unwrap() < 1e-9);
}

#[test]
fn window_engine_is_clean_under_multi_slot_streaming() {
    // The window engine is the shared streaming core; drive it through
    // the fused kernel (one slot) at f32 and through tiled PCR with
    // multiple slots per block, which exercises the carry/cache rolls
    // hardest.
    let (m, n, k) = (6usize, 96usize, 2u32);
    let host = random_batch::<f32>(m, n, 29);
    let mut mem = GpuMemory::new();
    let dev = upload(&mut mem, &host);
    let out = [
        mem.alloc(m * n),
        mem.alloc(m * n),
        mem.alloc(m * n),
        mem.alloc(m * n),
    ];
    let assignments = TiledPcrKernel::assign_multi_system_per_block(m, n, 3);
    let blocks = assignments.len();
    let kernel = TiledPcrKernel {
        input: [dev.a, dev.b, dev.c, dev.d],
        output: out,
        n,
        k,
        sub_tile: 2 << k,
        assignments,
    };
    let cfg = LaunchConfig::new("window_multi_slot", blocks, 3 << k);
    let res = launch_with(&DeviceSpec::gtx480(), &cfg, &exec(), &kernel, &mut mem).unwrap();
    assert_clean(&res, "window multi-slot f32");
}
