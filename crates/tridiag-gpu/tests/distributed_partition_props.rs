//! Property tests of the row partitioner and the distributed planner.
//!
//! The contract under test: `partition_rows(n, d)` assigns every row of
//! one system to exactly one contiguous chunk, chunk sizes are balanced
//! within ±1 and never below 2 (each chunk owns two interface rows),
//! the chunk → reduced-system index mapping is a monotone bijection,
//! and the degenerate geometries (`d == 0`, `n == 0`, `n < 2d`) are
//! typed `InvalidPlan` errors — never panics. On top of that,
//! `DistributedPlan::build` must keep those invariants per chunk (an
//! interior plan exactly when the chunk has interior rows), round-trip
//! through its own schema checker, and pass the static verifier — for
//! homogeneous and mixed-device groups alike.

use gpu_sim::{DeviceGroup, DeviceSpec, SimError};
use proptest::prelude::*;
use tridiag_gpu::solver::GpuSolverConfig;
use tridiag_gpu::{partition_rows, DistributedPlan};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every row lands in exactly one chunk, chunks are contiguous and
    /// ordered, sizes are balanced within ±1, and no chunk is smaller
    /// than its two interface rows.
    #[test]
    fn every_row_in_exactly_one_balanced_chunk(
        n in 2usize..8193,
        d in 1usize..9,
    ) {
        prop_assume!(n >= 2 * d);
        let chunks = partition_rows(n, d).unwrap();
        prop_assert_eq!(chunks.len(), d);
        let mut cursor = 0usize;
        for &(start, count) in &chunks {
            prop_assert_eq!(start, cursor, "chunks must be contiguous and ordered");
            prop_assert!(count >= 2, "every chunk owns two interface rows");
            cursor += count;
        }
        prop_assert_eq!(cursor, n, "chunks must cover all n rows");
        let max = chunks.iter().map(|c| c.1).max().unwrap();
        let min = chunks.iter().map(|c| c.1).min().unwrap();
        prop_assert!(max - min <= 1, "balance within +-1: max {} min {}", max, min);
    }

    /// The interface-index mapping is a monotone bijection: chunk `j`
    /// contributes reduced unknowns `2j` and `2j + 1`, standing for its
    /// global first and last rows — `2d` global indices, all distinct,
    /// strictly increasing in reduced order.
    #[test]
    fn interface_indices_are_a_monotone_bijection(
        n in 2usize..8193,
        d in 1usize..9,
    ) {
        prop_assume!(n >= 2 * d);
        let chunks = partition_rows(n, d).unwrap();
        // Global row behind each reduced unknown, in reduced order
        // (x_s0, x_e0, x_s1, x_e1, ...).
        let mut globals = Vec::with_capacity(2 * d);
        for &(start, count) in &chunks {
            globals.push(start);
            globals.push(start + count - 1);
        }
        prop_assert_eq!(globals.len(), 2 * d);
        for w in globals.windows(2) {
            prop_assert!(
                w[0] < w[1],
                "reduced order must be strictly increasing in global rows: {} !< {}",
                w[0],
                w[1]
            );
        }
        prop_assert_eq!(globals[0], 0, "first interface is row 0");
        prop_assert_eq!(*globals.last().unwrap(), n - 1, "last interface is row n-1");
    }

    /// `d == 1` is the identity partition, and the planner takes the
    /// identity path: no chunks, no reduced system, just the ordinary
    /// single-device plan.
    #[test]
    fn single_device_split_is_identity(n in 2usize..8193) {
        prop_assert_eq!(partition_rows(n, 1).unwrap(), vec![(0, n)]);
        let group = DeviceGroup::single(DeviceSpec::gtx480());
        let plan = DistributedPlan::build(&group, &GpuSolverConfig::default(), n, 8).unwrap();
        prop_assert!(plan.identity.is_some(), "D = 1 must be the identity path");
        prop_assert!(plan.chunks.is_empty());
        prop_assert!(plan.reduced.is_none());
    }

    /// Degenerate geometries are typed errors, not panics.
    #[test]
    fn degenerate_partitions_are_typed_errors(
        n in 0usize..16,
        d in 0usize..9,
    ) {
        let result = partition_rows(n, d);
        if d == 0 || n == 0 || n < 2 * d {
            prop_assert!(matches!(result, Err(SimError::InvalidPlan(_))));
        } else {
            prop_assert!(result.is_ok());
        }
    }

    /// Distributed plans over random mixed-device groups always build,
    /// keep the chunk invariants (interior plan exactly when the chunk
    /// has more than its two interface rows, interior geometry matching
    /// the chunk), survive the JSON schema checker, and pass the static
    /// verifier cleanly.
    #[test]
    fn mixed_device_groups_build_valid_distributed_plans(
        n_exp in 4u32..14,
        picks in prop::collection::vec(0usize..3, 1..5),
        seed in any::<u64>(),
    ) {
        let n = 1usize << n_exp;
        let specs: Vec<DeviceSpec> = picks
            .iter()
            .map(|&p| match p {
                0 => DeviceSpec::gtx480(),
                1 => DeviceSpec::gtx280(),
                _ => DeviceSpec::c2050(),
            })
            .collect();
        prop_assume!(n >= 2 * specs.len());
        let _ = seed; // plans are deterministic; seed only varies the case mix
        let group = DeviceGroup::from_specs(specs).unwrap();
        let config = GpuSolverConfig::default();
        let plan = DistributedPlan::build(&group, &config, n, 8).unwrap();
        if group.len() == 1 {
            prop_assert!(plan.identity.is_some());
        } else {
            prop_assert!(plan.identity.is_none());
            prop_assert_eq!(plan.chunks.len(), group.len());
            let mut cursor = 0usize;
            for (i, chunk) in plan.chunks.iter().enumerate() {
                prop_assert_eq!(chunk.device_index, i);
                prop_assert_eq!(chunk.row_start, cursor);
                cursor += chunk.row_count;
                match &chunk.interior {
                    None => prop_assert_eq!(
                        chunk.row_count, 2,
                        "interface-only chunks have exactly two rows"
                    ),
                    Some(interior) => {
                        prop_assert!(chunk.row_count > 2);
                        prop_assert_eq!(interior.m, 1);
                        prop_assert_eq!(interior.n, chunk.row_count - 2);
                        prop_assert_eq!(interior.elem_bytes, 8);
                    }
                }
            }
            prop_assert_eq!(cursor, n);
            let reduced = plan.reduced.as_ref().expect("reduced plan at D >= 2");
            prop_assert_eq!(reduced.m, 1);
            prop_assert_eq!(reduced.n, 2 * group.len());
        }
        // Validate the serialized form against its own schema checker.
        let problems = tridiag_gpu::validate_distributed_plan_json(&plan.to_json());
        prop_assert!(problems.is_empty(), "schema drift: {:?}", problems);
        // And certify with the static verifier.
        let report = tridiag_gpu::verify_distributed_plan(&group, &plan);
        prop_assert!(
            report.is_clean(),
            "verifier findings on a fresh plan: {:?}",
            report.messages()
        );
    }
}

#[test]
fn distributed_plan_rejects_more_interface_rows_than_rows() {
    let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), 4).unwrap();
    let config = GpuSolverConfig::default();
    let err = DistributedPlan::build(&group, &config, 7, 8).unwrap_err();
    assert!(matches!(err, SimError::InvalidPlan(_)), "got {err:?}");
    let err = DistributedPlan::build(&group, &config, 0, 8).unwrap_err();
    assert!(matches!(err, SimError::InvalidPlan(_)), "got {err:?}");
}
