//! In-shared-memory PCR kernel — the conventional approach the paper
//! generalises (Sengupta/Egloff/Zhang lineage, Section II).
//!
//! One block loads one whole system into shared memory, runs lockstep
//! PCR steps with double buffering, and either fully decouples the
//! system (`steps = ceil(log2 n)`, then divides) or stops early and
//! finishes each subsystem with one thread of sequential Thomas — the
//! Zhang-style "PCR-Thomas in shared memory" hybrid.
//!
//! Its defining limitation is structural: the **whole system must fit in
//! shared memory**, which on a GTX480 in double precision caps `n` at
//! `48 KiB / (2 · 4 arrays · 8 B) ≈ 768` rows. The tiled PCR kernel
//! exists precisely to remove this cap.

use crate::buffers::GpuScalar;
use crate::consts::{PCR_FLOPS_PER_ROW, THOMAS_BWD_FLOPS, THOMAS_FWD_FLOPS};
use gpu_sim::{BlockCtx, BlockKernel, BufId, Result, SimError};
use tridiag_core::cr::{reduce_row, Row};

/// In-shared-memory PCR(+Thomas) kernel: one block per system.
#[derive(Debug, Clone, Copy)]
pub struct PcrSharedKernel {
    /// Coefficient buffers `[a, b, c, d]`, contiguous layout.
    pub input: [BufId; 4],
    /// Solution buffer, contiguous layout.
    pub x: BufId,
    /// Rows per system.
    pub n: usize,
    /// PCR steps before the per-thread Thomas finish. `None` = reduce
    /// fully (`ceil(log2 n)` steps) and divide.
    pub steps: Option<u32>,
}

impl PcrSharedKernel {
    /// Shared elements needed: double-buffered 4 arrays of `n`.
    pub fn shared_elems(n: usize) -> usize {
        8 * n
    }

    /// Largest system that fits shared memory for an element size.
    pub fn max_n(shared_bytes: usize, elem_bytes: usize) -> usize {
        shared_bytes / (8 * elem_bytes)
    }
}

impl<S: GpuScalar> BlockKernel<S> for PcrSharedKernel {
    fn run_block(&self, ctx: &mut BlockCtx<'_, S>) -> Result<()> {
        let n = self.n;
        let sys = ctx.block_id;
        let full = tridiag_core::pcr::full_steps(n);
        if let Some(s) = self.steps {
            // A partial reduction hands 2^s subsystems to the Thomas
            // finish; each must have at least one row.
            if s < full && (1usize << s) > n {
                return Err(SimError::InvalidLaunch(format!(
                    "{s} PCR steps exceed system size {n}"
                )));
            }
        }
        let steps = self.steps.unwrap_or(full).min(full);

        // Double-buffered shared arrays.
        ctx.phase("setup");
        let mut base = [[0usize; 4]; 2];
        for (half, slot) in base.iter_mut().enumerate() {
            let _ = half;
            for b in slot.iter_mut() {
                *b = ctx.shared_alloc(n)?;
            }
        }

        // Load the system (coalesced contiguous reads).
        ctx.phase("load");
        let idx_g: Vec<usize> = (sys * n..sys * n + n).collect();
        let mut tmp = Vec::new();
        for arr in 0..4 {
            for (gi, chunk_start) in idx_g.chunks(ctx.threads).zip((0..n).step_by(ctx.threads)) {
                ctx.ld(self.input[arr], gi, &mut tmp)?;
                let si: Vec<usize> = (0..gi.len()).map(|o| base[0][arr] + chunk_start + o).collect();
                ctx.sh_st(&si, &tmp)?;
            }
        }
        ctx.sync();

        // Lockstep PCR steps, ping-ponging between the two halves.
        ctx.phase("pcr_step");
        let mut cur = 0usize;
        for step in 0..steps {
            let stride = 1usize << step;
            let nxt = 1 - cur;
            // Read all rows (three spans per array) and write the next
            // buffer. Register staging per chunk of block threads.
            let mut rows_out: Vec<Row<S>> = Vec::with_capacity(n);
            // Reads: per array, positions i, i±stride (clamped handled
            // via identity).
            let mut vals: Vec<[S; 4]> = vec![[S::ZERO; 4]; n];
            for arr in 0..4 {
                let si: Vec<usize> = (0..n).map(|i| base[cur][arr] + i).collect();
                for (chunk, start) in si.chunks(ctx.threads).zip((0..n).step_by(ctx.threads)) {
                    ctx.sh_ld(chunk, &mut tmp)?;
                    for (o, &v) in tmp.iter().enumerate() {
                        vals[start + o][arr] = v;
                    }
                }
            }
            let row = |i: isize| -> Row<S> {
                if i < 0 || i >= n as isize {
                    Row::identity()
                } else {
                    let v = vals[i as usize];
                    Row {
                        a: v[0],
                        b: v[1],
                        c: v[2],
                        d: v[3],
                    }
                }
            };
            for i in 0..n as isize {
                let r = reduce_row(row(i - stride as isize), row(i), row(i + stride as isize), i as usize)
                    .map_err(|e| SimError::KernelFault(e.to_string()))?;
                rows_out.push(r);
            }
            ctx.flops(n as u64 * PCR_FLOPS_PER_ROW);
            ctx.sync();
            for arr in 0..4 {
                let si: Vec<usize> = (0..n).map(|i| base[nxt][arr] + i).collect();
                let sv: Vec<S> = rows_out
                    .iter()
                    .map(|r| match arr {
                        0 => r.a,
                        1 => r.b,
                        2 => r.c,
                        _ => r.d,
                    })
                    .collect();
                for (ci, cv) in si.chunks(ctx.threads).zip(sv.chunks(ctx.threads)) {
                    ctx.sh_st(ci, cv)?;
                }
            }
            ctx.sync();
            cur = nxt;
        }

        // Finish: either trivial divide (fully reduced) or per-thread
        // Thomas over the 2^steps interleaved subsystems.
        ctx.phase("finish");
        let stride = 1usize << steps;
        let mut x_host = vec![S::ZERO; n];
        {
            // Pull the final level into host registers for the serial
            // finish (accounted as shared reads).
            let mut vals: Vec<[S; 4]> = vec![[S::ZERO; 4]; n];
            for arr in 0..4 {
                let si: Vec<usize> = (0..n).map(|i| base[cur][arr] + i).collect();
                for (chunk, start) in si.chunks(ctx.threads).zip((0..n).step_by(ctx.threads)) {
                    ctx.sh_ld(chunk, &mut tmp)?;
                    for (o, &v) in tmp.iter().enumerate() {
                        vals[start + o][arr] = v;
                    }
                }
            }
            if stride >= n {
                for (i, v) in vals.iter().enumerate() {
                    if v[1] == S::ZERO {
                        return Err(SimError::KernelFault(format!("zero pivot row {i}")));
                    }
                    x_host[i] = v[3] / v[1];
                }
                ctx.flops(n as u64);
            } else {
                for j in 0..stride {
                    let rows: Vec<usize> = (j..n).step_by(stride).collect();
                    let ln = rows.len();
                    let mut cp = vec![S::ZERO; ln];
                    let mut dp = vec![S::ZERO; ln];
                    for (r, &gi) in rows.iter().enumerate() {
                        let [a, b, c, d] = vals[gi];
                        if r == 0 {
                            if b == S::ZERO {
                                return Err(SimError::KernelFault("zero pivot".into()));
                            }
                            cp[0] = c / b;
                            dp[0] = d / b;
                        } else {
                            let denom = b - cp[r - 1] * a;
                            if denom == S::ZERO {
                                return Err(SimError::KernelFault("zero pivot".into()));
                            }
                            let inv = S::ONE / denom;
                            cp[r] = c * inv;
                            dp[r] = (d - dp[r - 1] * a) * inv;
                        }
                    }
                    x_host[rows[ln - 1]] = dp[ln - 1];
                    for r in (0..ln - 1).rev() {
                        x_host[rows[r]] = dp[r] - cp[r] * x_host[rows[r + 1]];
                    }
                }
                ctx.flops(n as u64 * (THOMAS_FWD_FLOPS + THOMAS_BWD_FLOPS));
            }
        }

        // Store the solution (coalesced).
        ctx.phase("store");
        for (gi, chunk_start) in idx_g.chunks(ctx.threads).zip((0..n).step_by(ctx.threads)) {
            let xs = &x_host[chunk_start..chunk_start + gi.len()];
            ctx.st(self.x, gi, xs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::upload;
    use gpu_sim::{launch, DeviceSpec, GpuMemory, LaunchConfig};
    use tridiag_core::generators::random_batch;

    fn run(m: usize, n: usize, steps: Option<u32>) -> (f64, gpu_sim::LaunchResult) {
        let host = random_batch::<f64>(m, n, 3);
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        let kernel = PcrSharedKernel {
            input: [dev.a, dev.b, dev.c, dev.d],
            x: dev.x,
            n,
            steps,
        };
        let cfg = LaunchConfig::new("pcr_shared", m, (n as u32).min(256));
        let res = launch(&DeviceSpec::gtx480(), &cfg, &kernel, &mut mem).unwrap();
        let x = mem.read(dev.x).unwrap();
        (host.max_relative_residual(x).unwrap(), res)
    }

    #[test]
    fn full_reduction_solves() {
        for n in [8usize, 64, 256, 100] {
            let (resid, _) = run(4, n, None);
            assert!(resid < 1e-9, "n={n}: {resid}");
        }
    }

    #[test]
    fn partial_reduction_plus_thomas_solves() {
        for steps in [1u32, 2, 4] {
            let (resid, _) = run(2, 128, Some(steps));
            assert!(resid < 1e-9, "steps={steps}: {resid}");
        }
    }

    #[test]
    fn shared_footprint_scales_with_n() {
        let (_, small) = run(1, 64, None);
        let (_, big) = run(1, 512, None);
        assert_eq!(small.shared_bytes_per_block, 8 * 64 * 8);
        assert_eq!(big.shared_bytes_per_block, 8 * 512 * 8);
        // Occupancy collapses as the tile grows — the paper's complaint.
        assert!(big.occupancy.blocks_per_sm < small.occupancy.blocks_per_sm);
    }

    #[test]
    fn too_large_system_rejected_by_shared_capacity() {
        let host = random_batch::<f64>(1, 1024, 1);
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        let kernel = PcrSharedKernel {
            input: [dev.a, dev.b, dev.c, dev.d],
            x: dev.x,
            n: 1024,
            steps: None,
        };
        let cfg = LaunchConfig::new("pcr_shared", 1, 256);
        // 8 * 1024 * 8 B = 64 KiB > 48 KiB.
        assert!(launch(&DeviceSpec::gtx480(), &cfg, &kernel, &mut mem).is_err());
    }

    #[test]
    fn max_n_helper() {
        assert_eq!(PcrSharedKernel::max_n(48 * 1024, 8), 768);
        assert_eq!(PcrSharedKernel::max_n(48 * 1024, 4), 1536);
        assert_eq!(PcrSharedKernel::shared_elems(256), 2048);
    }
}
