//! The thread-level parallel Thomas kernel (Section III-B).
//!
//! One thread solves one (sub)system with the classic Thomas recurrence;
//! the kernel's entire performance story is the *addressing*: when
//! systems are interleaved in memory, a warp's 32 threads read 32
//! adjacent elements per row step — fully coalesced. The incomplete-PCR
//! front end produces exactly that interleaving "for free".
//!
//! Forward-sweep intermediates `c'` and `d'` go to global scratch (also
//! interleaved) and are re-read by the backward sweep, matching how real
//! GPU p-Thomas implementations spill when the system exceeds the
//! register file.

use crate::consts::{THOMAS_BWD_FLOPS, THOMAS_FWD_FLOPS};
use gpu_sim::{BlockCtx, BlockKernel, BufId, Result};

use crate::buffers::GpuScalar;

/// How a p-Thomas thread maps `(its system, row r)` to a flat element
/// index — the coalescing-critical decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrMap {
    /// `M` whole systems stored interleaved: element `(t, r)` at
    /// `r·M + t`. The layout pure p-Thomas wants (`k = 0` path).
    Interleaved {
        /// Number of systems.
        m: usize,
        /// Rows per system.
        n: usize,
    },
    /// `M` systems stored contiguously (`sys·n + r`), each split by
    /// k-step PCR into `2^k` interleaved subsystems: global thread
    /// `t = sys·2^k + j` owns rows `sys·n + j + r·2^k`. This is the
    /// layout the tiled-PCR front end leaves behind.
    HybridSubsystems {
        /// Outer systems.
        m: usize,
        /// Rows per outer system.
        n: usize,
        /// PCR steps (subsystem stride is `2^k`).
        k: u32,
    },
    /// `M` whole systems stored contiguously (`t·n + r`) — the
    /// *uncoalesced* strawman kept for the ablation bench: a warp's
    /// threads stride by `n` and every access costs 32 transactions.
    Contiguous {
        /// Number of systems.
        m: usize,
        /// Rows per system.
        n: usize,
    },
}

impl AddrMap {
    /// Total independent (sub)systems — one thread each.
    pub fn num_threads(&self) -> usize {
        match *self {
            AddrMap::Interleaved { m, .. } | AddrMap::Contiguous { m, .. } => m,
            AddrMap::HybridSubsystems { m, k, .. } => m << k,
        }
    }

    /// Rows in thread `t`'s system.
    #[inline]
    pub fn rows(&self, t: usize) -> usize {
        match *self {
            AddrMap::Interleaved { n, .. } | AddrMap::Contiguous { n, .. } => n,
            AddrMap::HybridSubsystems { n, k, .. } => {
                let j = t & ((1usize << k) - 1);
                (n - j).div_ceil(1 << k)
            }
        }
    }

    /// Flat index of thread `t`'s row `r`.
    #[inline]
    pub fn index(&self, t: usize, r: usize) -> usize {
        match *self {
            AddrMap::Interleaved { m, .. } => r * m + t,
            AddrMap::Contiguous { n, .. } => t * n + r,
            AddrMap::HybridSubsystems { n, k, .. } => {
                let sys = t >> k;
                let j = t & ((1usize << k) - 1);
                sys * n + j + (r << k)
            }
        }
    }
}

/// The p-Thomas kernel: buffers for the coefficients, two scratch
/// buffers for `c'`/`d'`, and the output.
#[derive(Debug, Clone, Copy)]
pub struct PThomasKernel {
    /// Sub-diagonal.
    pub a: BufId,
    /// Main diagonal.
    pub b: BufId,
    /// Super-diagonal.
    pub c: BufId,
    /// Right-hand side.
    pub d: BufId,
    /// Scratch for `c'` (same size/layout as the inputs).
    pub c_prime: BufId,
    /// Scratch for `d'`.
    pub d_prime: BufId,
    /// Solution (same size/layout).
    pub x: BufId,
    /// Addressing scheme.
    pub map: AddrMap,
}

impl<S: GpuScalar> BlockKernel<S> for PThomasKernel {
    fn run_block(&self, ctx: &mut BlockCtx<'_, S>) -> Result<()> {
        let total = self.map.num_threads();
        let base = ctx.block_id * ctx.threads;
        let count = ctx.threads.min(total.saturating_sub(base));
        if count == 0 {
            return Ok(());
        }
        let threads: Vec<usize> = (base..base + count).collect();
        let max_rows = threads.iter().map(|&t| self.map.rows(t)).max().unwrap_or(0);

        // Per-thread recurrence registers.
        let mut cp_reg = vec![S::ZERO; count];
        let mut dp_reg = vec![S::ZERO; count];

        let mut idx: Vec<usize> = Vec::with_capacity(count);
        let mut av = Vec::new();
        let mut bv = Vec::new();
        let mut cv = Vec::new();
        let mut dv = Vec::new();
        let mut cp_out = Vec::with_capacity(count);
        let mut dp_out = Vec::with_capacity(count);
        // Lane (within `idx`) -> thread slot, for rows where some
        // threads' shorter systems have already ended.
        let mut lane_thread: Vec<usize> = Vec::with_capacity(count);

        // ---- forward reduction (Eqs. 2–3) ---------------------------
        ctx.phase("forward");
        for r in 0..max_rows {
            idx.clear();
            lane_thread.clear();
            for (slot, &t) in threads.iter().enumerate() {
                if r < self.map.rows(t) {
                    idx.push(self.map.index(t, r));
                    lane_thread.push(slot);
                }
            }
            ctx.ld(self.a, &idx, &mut av)?;
            ctx.ld(self.b, &idx, &mut bv)?;
            ctx.ld(self.c, &idx, &mut cv)?;
            ctx.ld(self.d, &idx, &mut dv)?;
            cp_out.clear();
            dp_out.clear();
            for (lane, &slot) in lane_thread.iter().enumerate() {
                let (a, b, c, d) = (av[lane], bv[lane], cv[lane], dv[lane]);
                let (cp, dp) = if r == 0 {
                    if b == S::ZERO {
                        return Err(gpu_sim::SimError::KernelFault(format!(
                            "zero pivot, system {} row 0",
                            threads[slot]
                        )));
                    }
                    (c / b, d / b)
                } else {
                    let denom = b - cp_reg[slot] * a;
                    if denom == S::ZERO {
                        return Err(gpu_sim::SimError::KernelFault(format!(
                            "zero pivot, system {} row {r}",
                            threads[slot]
                        )));
                    }
                    let inv = S::ONE / denom;
                    (c * inv, (d - dp_reg[slot] * a) * inv)
                };
                cp_reg[slot] = cp;
                dp_reg[slot] = dp;
                cp_out.push(cp);
                dp_out.push(dp);
            }
            ctx.flops(idx.len() as u64 * THOMAS_FWD_FLOPS);
            ctx.st(self.c_prime, &idx, &cp_out)?;
            ctx.st(self.d_prime, &idx, &dp_out)?;
        }

        // ---- backward substitution (Eq. 4) --------------------------
        // x registers reuse the recurrence slots.
        ctx.phase("backward");
        let mut x_reg = vec![S::ZERO; count];
        let mut xv = Vec::with_capacity(count);
        for r in (0..max_rows).rev() {
            idx.clear();
            lane_thread.clear();
            for (slot, &t) in threads.iter().enumerate() {
                if r < self.map.rows(t) {
                    idx.push(self.map.index(t, r));
                    lane_thread.push(slot);
                }
            }
            ctx.ld(self.c_prime, &idx, &mut cv)?;
            ctx.ld(self.d_prime, &idx, &mut dv)?;
            xv.clear();
            for (lane, &slot) in lane_thread.iter().enumerate() {
                let rows_t = self.map.rows(threads[slot]);
                let x = if r + 1 == rows_t {
                    dv[lane]
                } else {
                    dv[lane] - cv[lane] * x_reg[slot]
                };
                x_reg[slot] = x;
                xv.push(x);
            }
            ctx.flops(idx.len() as u64 * THOMAS_BWD_FLOPS);
            ctx.st(self.x, &idx, &xv)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::upload;
    use crate::consts::{PTHOMAS_BLOCK, REGS_PTHOMAS};
    use gpu_sim::{launch, DeviceSpec, GpuMemory, LaunchConfig};
    use tridiag_core::generators::random_batch;
    use tridiag_core::Layout;

    fn run_interleaved(m: usize, n: usize) -> f64 {
        let host = random_batch::<f64>(m, n, 42).to_layout(Layout::Interleaved);
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        let cp = mem.alloc(dev.total());
        let dp = mem.alloc(dev.total());
        let kernel = PThomasKernel {
            a: dev.a,
            b: dev.b,
            c: dev.c,
            d: dev.d,
            c_prime: cp,
            d_prime: dp,
            x: dev.x,
            map: AddrMap::Interleaved { m, n },
        };
        let cfg = LaunchConfig::new(
            "p_thomas",
            m.div_ceil(PTHOMAS_BLOCK as usize),
            PTHOMAS_BLOCK,
        )
        .with_regs(REGS_PTHOMAS);
        launch(&DeviceSpec::gtx480(), &cfg, &kernel, &mut mem).unwrap();
        let x = mem.read(dev.x).unwrap();
        host.max_relative_residual(x).unwrap()
    }

    #[test]
    fn solves_interleaved_batches() {
        assert!(run_interleaved(1, 16) < 1e-10);
        assert!(run_interleaved(7, 33) < 1e-10);
        assert!(run_interleaved(256, 64) < 1e-10);
        assert!(run_interleaved(130, 100) < 1e-10);
    }

    #[test]
    fn interleaved_is_coalesced_contiguous_is_not() {
        let m = 128;
        let n = 64;
        let spec = DeviceSpec::gtx480();
        let mut results = Vec::new();
        for layout in [Layout::Interleaved, Layout::Contiguous] {
            let host = random_batch::<f64>(m, n, 7).to_layout(layout);
            let mut mem = GpuMemory::new();
            let dev = upload(&mut mem, &host);
            let cp = mem.alloc(dev.total());
            let dp = mem.alloc(dev.total());
            let map = match layout {
                Layout::Interleaved => AddrMap::Interleaved { m, n },
                Layout::Contiguous => AddrMap::Contiguous { m, n },
            };
            let kernel = PThomasKernel {
                a: dev.a,
                b: dev.b,
                c: dev.c,
                d: dev.d,
                c_prime: cp,
                d_prime: dp,
                x: dev.x,
                map,
            };
            let cfg = LaunchConfig::new("p_thomas", 1, m as u32).with_regs(REGS_PTHOMAS);
            let res = launch(&spec, &cfg, &kernel, &mut mem).unwrap();
            assert!(host.max_relative_residual(mem.read(dev.x).unwrap()).unwrap() < 1e-10);
            results.push(res.stats.total);
        }
        let good = results[0];
        let bad = results[1];
        // Same useful bytes, wildly different transactions.
        assert_eq!(good.global_bytes(), bad.global_bytes());
        assert!(
            bad.global_load_transactions >= 10 * good.global_load_transactions,
            "contiguous {} vs interleaved {}",
            bad.global_load_transactions,
            good.global_load_transactions
        );
        assert!(good.coalescing_efficiency(128) > 0.9);
        assert!(bad.coalescing_efficiency(128) < 0.2);
    }

    #[test]
    fn hybrid_subsystem_addressing_solves_pcr_output() {
        // Reduce one system with host PCR, store the reduced rows in
        // their natural (contiguous per system, internally interleaved)
        // order, and let the kernel solve all subsystems.
        use tridiag_core::{generators::dominant_random, pcr};
        let n = 256;
        let k = 3;
        let sys = dominant_random::<f64>(n, 9);
        let red = pcr::reduce(&sys, k).unwrap();
        let (ra, rb, rc, rd) = red.arrays();
        let mut mem = GpuMemory::<f64>::new();
        let a = mem.alloc_from(ra.to_vec());
        let b = mem.alloc_from(rb.to_vec());
        let c = mem.alloc_from(rc.to_vec());
        let d = mem.alloc_from(rd.to_vec());
        let cp = mem.alloc(n);
        let dp = mem.alloc(n);
        let x = mem.alloc(n);
        let map = AddrMap::HybridSubsystems { m: 1, n, k };
        assert_eq!(map.num_threads(), 8);
        let kernel = PThomasKernel {
            a,
            b,
            c,
            d,
            c_prime: cp,
            d_prime: dp,
            x,
            map,
        };
        let cfg = LaunchConfig::new("p_thomas", 1, 8).with_regs(REGS_PTHOMAS);
        launch(&DeviceSpec::gtx480(), &cfg, &kernel, &mut mem).unwrap();
        let xs = mem.read(x).unwrap();
        assert!(sys.relative_residual(xs).unwrap() < 1e-10);
    }

    #[test]
    fn hybrid_addressing_handles_nonuniform_subsystems() {
        // n not divisible by 2^k: subsystem lengths differ by one.
        let map = AddrMap::HybridSubsystems { m: 2, n: 10, k: 2 };
        assert_eq!(map.num_threads(), 8);
        assert_eq!(map.rows(0), 3); // rows 0,4,8
        assert_eq!(map.rows(1), 3); // rows 1,5,9
        assert_eq!(map.rows(2), 2); // rows 2,6
        assert_eq!(map.rows(3), 2); // rows 3,7
        assert_eq!(map.index(5, 1), 10 + 1 + 4); // sys 1, j=1, r=1
    }

    #[test]
    fn zero_pivot_faults() {
        let mut mem = GpuMemory::<f64>::new();
        let a = mem.alloc_from(vec![0.0, 1.0]);
        let b = mem.alloc_from(vec![0.0, 1.0]); // singular head
        let c = mem.alloc_from(vec![1.0, 0.0]);
        let d = mem.alloc_from(vec![1.0, 1.0]);
        let cp = mem.alloc(2);
        let dp = mem.alloc(2);
        let x = mem.alloc(2);
        let kernel = PThomasKernel {
            a,
            b,
            c,
            d,
            c_prime: cp,
            d_prime: dp,
            x,
            map: AddrMap::Interleaved { m: 1, n: 2 },
        };
        let cfg = LaunchConfig::new("p_thomas", 1, 1);
        let err = launch(&DeviceSpec::gtx480(), &cfg, &kernel, &mut mem).unwrap_err();
        assert!(matches!(err, gpu_sim::SimError::KernelFault(_)));
    }
}
