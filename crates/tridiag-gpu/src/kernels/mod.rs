//! Simulated GPU kernels for the tridiagonal solver pipeline.

pub mod cr_shared;
pub mod fused;
pub mod p_thomas;
pub mod pcr_shared;
pub mod tiled_pcr;
pub(crate) mod window;
