//! In-shared-memory cyclic reduction kernel — the Sengupta/Göddeke
//! lineage the paper reviews in Section II.
//!
//! CR's forward reduction touches rows at stride `2^level`, so in
//! shared memory the surviving rows hit ever fewer banks: at level
//! `L ≥ 5` (stride ≥ 32) every active lane lands on the *same* bank and
//! the access serialises 32-fold. Göddeke & Strzodka \[10\] fixed this
//! with an index padding that inserts a gap every `banks` elements;
//! this kernel implements both layouts behind a flag so the ablation
//! bench can measure exactly what the padding buys — a faithful
//! reproduction of the motivation for reference \[10\].

use crate::buffers::GpuScalar;
use crate::consts::PCR_FLOPS_PER_ROW;
use gpu_sim::{BlockCtx, BlockKernel, BufId, Result, SimError};
use tridiag_core::cr::{reduce_row, Row};

/// In-shared-memory CR: one block per system (power-of-two `n`).
#[derive(Debug, Clone, Copy)]
pub struct CrSharedKernel {
    /// Coefficient buffers `[a, b, c, d]`, contiguous layout.
    pub input: [BufId; 4],
    /// Solution buffer, contiguous layout.
    pub x: BufId,
    /// Rows per system (must be a power of two for classic CR).
    pub n: usize,
    /// Apply the bank-conflict-avoiding padding of Göddeke et al.
    pub padded: bool,
}

impl CrSharedKernel {
    /// Padded index: insert one unused slot after every 32 elements.
    #[inline]
    fn pad(&self, i: usize) -> usize {
        if self.padded {
            i + i / 32
        } else {
            i
        }
    }

    /// Shared elements per array including padding slack.
    fn padded_len(&self) -> usize {
        self.pad(self.n.max(1) - 1) + 1
    }
}

impl<S: GpuScalar> BlockKernel<S> for CrSharedKernel {
    fn run_block(&self, ctx: &mut BlockCtx<'_, S>) -> Result<()> {
        let n = self.n;
        if !n.is_power_of_two() || n < 2 {
            return Err(SimError::InvalidLaunch(format!(
                "classic CR needs a power-of-two size, got {n}"
            )));
        }
        let sys = ctx.block_id;
        let plen = self.padded_len();
        ctx.phase("setup");
        let mut base = [0usize; 4];
        for b in base.iter_mut() {
            *b = ctx.shared_alloc(plen)?;
        }

        // Load (coalesced from global, padded into shared).
        ctx.phase("load");
        let g_idx: Vec<usize> = (sys * n..sys * n + n).collect();
        let mut tmp = Vec::new();
        for arr in 0..4 {
            for (chunk, start) in g_idx.chunks(ctx.threads).zip((0..n).step_by(ctx.threads)) {
                ctx.ld(self.input[arr], chunk, &mut tmp)?;
                let si: Vec<usize> =
                    (0..chunk.len()).map(|o| base[arr] + self.pad(start + o)).collect();
                ctx.sh_st(&si, &tmp)?;
            }
        }
        ctx.sync();

        let levels = n.trailing_zeros() as usize;

        // ---- forward reduction: eliminate odd multiples of 2^level ---
        // After level L the surviving rows are the multiples of 2^(L+1),
        // stored in place at their original (padded) indices — the
        // classic in-place CR that generates the stride pattern.
        ctx.phase("forward");
        for level in 0..levels - 1 {
            let stride = 1usize << level;
            let survivors: Vec<usize> = ((2 * stride - 1)..n).step_by(2 * stride).collect();
            // Each surviving row i updates from i-stride and i+stride.
            let mut rows: Vec<[Row<S>; 3]> = Vec::with_capacity(survivors.len());
            for arr in 0..4 {
                for (d, off) in [(0usize, -(stride as isize)), (1, 0), (2, stride as isize)] {
                    let si: Vec<usize> = survivors
                        .iter()
                        .map(|&i| {
                            let j = i as isize + off;
                            if j < 0 || j >= n as isize {
                                base[arr] // dummy in-bounds slot; lane masked below
                            } else {
                                base[arr] + self.pad(j as usize)
                            }
                        })
                        .collect();
                    for (chunk, start) in
                        si.chunks(ctx.threads).zip((0..si.len()).step_by(ctx.threads))
                    {
                        ctx.sh_ld(chunk, &mut tmp)?;
                        for (o, &v) in tmp.iter().enumerate() {
                            let slot = start + o;
                            if rows.len() <= slot {
                                rows.resize(slot + 1, [Row::identity(); 3]);
                            }
                            let r = &mut rows[slot][d];
                            match arr {
                                0 => r.a = v,
                                1 => r.b = v,
                                2 => r.c = v,
                                _ => r.d = v,
                            }
                        }
                    }
                }
            }
            ctx.sync();
            // Mask out-of-range neighbours to identity.
            let mut out: Vec<Row<S>> = Vec::with_capacity(survivors.len());
            for (slot, &i) in survivors.iter().enumerate() {
                let prev = if i >= stride { rows[slot][0] } else { Row::identity() };
                let next = if i + stride < n { rows[slot][2] } else { Row::identity() };
                out.push(
                    reduce_row(prev, rows[slot][1], next, i)
                        .map_err(|e| SimError::KernelFault(e.to_string()))?,
                );
            }
            ctx.flops(survivors.len() as u64 * PCR_FLOPS_PER_ROW);
            for arr in 0..4 {
                let si: Vec<usize> = survivors.iter().map(|&i| base[arr] + self.pad(i)).collect();
                let sv: Vec<S> = out
                    .iter()
                    .map(|r| match arr {
                        0 => r.a,
                        1 => r.b,
                        2 => r.c,
                        _ => r.d,
                    })
                    .collect();
                for (ci, cv) in si.chunks(ctx.threads).zip(sv.chunks(ctx.threads)) {
                    ctx.sh_st(ci, cv)?;
                }
            }
            ctx.sync();
        }

        // ---- 2x2 apex + backward substitution ------------------------
        // Read the full final state into registers (accounted), solve
        // the apex, then substitute level by level.
        ctx.phase("apex_bsub");
        let mut vals: Vec<[S; 4]> = vec![[S::ZERO; 4]; n];
        for arr in 0..4 {
            let si: Vec<usize> = (0..n).map(|i| base[arr] + self.pad(i)).collect();
            for (chunk, start) in si.chunks(ctx.threads).zip((0..n).step_by(ctx.threads)) {
                ctx.sh_ld(chunk, &mut tmp)?;
                for (o, &v) in tmp.iter().enumerate() {
                    vals[start + o][arr] = v;
                }
            }
        }
        let row_at = |vals: &Vec<[S; 4]>, i: usize| Row {
            a: vals[i][0],
            b: vals[i][1],
            c: vals[i][2],
            d: vals[i][3],
        };
        let mut x = vec![S::ZERO; n];
        {
            let half = n / 2;
            let top = row_at(&vals, half - 1);
            let bot = row_at(&vals, n - 1);
            let det = top.b * bot.b - top.c * bot.a;
            if det == S::ZERO {
                return Err(SimError::KernelFault("singular 2x2 apex".into()));
            }
            x[half - 1] = (top.d * bot.b - top.c * bot.d) / det;
            x[n - 1] = (bot.d * top.b - bot.a * top.d) / det;
        }
        for level in (0..levels - 1).rev() {
            let stride = 1usize << level;
            let mut i = stride - 1;
            while i < n {
                // Rows at odd multiples of stride were eliminated at this
                // level; substitute them now.
                if ((i + 1) / stride) % 2 == 1 {
                    let r = row_at(&vals, i);
                    let left = if i >= stride { x[i - stride] } else { S::ZERO };
                    let right = if i + stride < n { x[i + stride] } else { S::ZERO };
                    if r.b == S::ZERO {
                        return Err(SimError::KernelFault(format!("zero pivot row {i}")));
                    }
                    x[i] = (r.d - r.a * left - r.c * right) / r.b;
                }
                i += stride;
            }
            ctx.flops((n / (2 * stride)) as u64 * 5);
        }

        // Store the solution.
        ctx.phase("store");
        for (chunk, start) in g_idx.chunks(ctx.threads).zip((0..n).step_by(ctx.threads)) {
            ctx.st(self.x, chunk, &x[start..start + chunk.len()])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::upload;
    use gpu_sim::{launch, DeviceSpec, GpuMemory, LaunchConfig, LaunchResult};
    use tridiag_core::generators::random_batch;

    fn run(m: usize, n: usize, padded: bool) -> (f64, LaunchResult) {
        let host = random_batch::<f64>(m, n, 3 + n as u64);
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        let kernel = CrSharedKernel {
            input: [dev.a, dev.b, dev.c, dev.d],
            x: dev.x,
            n,
            padded,
        };
        let cfg = LaunchConfig::new("cr_shared", m, (n as u32 / 2).clamp(32, 512));
        let res = launch(&DeviceSpec::gtx480(), &cfg, &kernel, &mut mem).unwrap();
        let x = mem.read(dev.x).unwrap();
        (host.max_relative_residual(x).unwrap(), res)
    }

    #[test]
    fn solves_power_of_two_systems() {
        for n in [4usize, 16, 64, 256, 512] {
            for padded in [false, true] {
                let (resid, _) = run(2, n, padded);
                assert!(resid < 1e-9, "n={n} padded={padded}: {resid}");
            }
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        let host = random_batch::<f64>(1, 100, 1);
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        let kernel = CrSharedKernel {
            input: [dev.a, dev.b, dev.c, dev.d],
            x: dev.x,
            n: 100,
            padded: false,
        };
        let cfg = LaunchConfig::new("cr_shared", 1, 64);
        assert!(launch(&DeviceSpec::gtx480(), &cfg, &kernel, &mut mem).is_err());
    }

    #[test]
    fn padding_removes_bank_conflicts() {
        // The Göddeke ablation: same solve, same answer, far fewer
        // shared-memory replays with the padded layout.
        let n = 512;
        let (r_plain, plain) = run(4, n, false);
        let (r_padded, padded) = run(4, n, true);
        assert!(r_plain < 1e-9 && r_padded < 1e-9);
        assert!(
            plain.stats.total.bank_conflict_replays
                > 4 * padded.stats.total.bank_conflict_replays.max(1),
            "plain {} vs padded {} replays",
            plain.stats.total.bank_conflict_replays,
            padded.stats.total.bank_conflict_replays
        );
        // Identical global traffic — padding is purely an on-chip fix.
        assert_eq!(
            plain.stats.total.global_bytes(),
            padded.stats.total.global_bytes()
        );
    }
}
