//! The tiled PCR kernel with the buffered sliding window
//! (Section III-A, Figs. 8–10).
//!
//! Each *stream slot* (one per thread group of `2^k` threads) performs
//! k-step PCR over (a range of) one system, streaming it through shared
//! memory `sub_tile = c·2^k` rows at a time. Per coefficient array the
//! block holds:
//!
//! - a **window buffer** of `2·f(k) + sub_tile` elements. Level-`j`
//!   fresh values live at offset `OFF_j = 2·f(k) − 2·(2^j − 1)`; each
//!   level writes in place two half-strides below its source (the
//!   buffer "shifting" of Fig. 10(c)), so level `k` lands at offset 0.
//! - a **dependency cache** of `2·f(k)` elements holding, per level
//!   `j < k`, the `2^{j+1}` trailing values the next sub-tile needs —
//!   the paper's top-buffer contents, sized exactly at the minimum
//!   `2·f(k)` derived in Section III-A.
//! - an **output carry** of `sub_tile − f(k)` elements that delays
//!   emission so every global store is sub-tile aligned — the paper's
//!   "shifting the computation boundary" optimisation enabled by the
//!   window margin (without it, every store warp pays one extra 128-B
//!   segment).
//!
//! The streaming core lives in `super::window::WindowEngine` and is
//! shared with the fused kernel. Because out-of-range neighbours are
//! identity rows at every level (`reduce_row(·, identity, ·) =
//! identity`), the kernel's output is **bit-for-bit identical** to the
//! monolithic host reduction [`tridiag_core::pcr::reduce`] — the tests
//! assert exact equality.
//!
//! The `assignments` table expresses all three Fig. 11 mappings:
//! - (a) one system per block: one slot per block, full emit range;
//! - (b) one system across a block group: several blocks carry slots of
//!   the same system with disjoint emit ranges (each pays `f(k)` halo
//!   loads per side);
//! - (c) several systems per block: several slots per block, advanced in
//!   lockstep phase by phase (independent loads in flight — the latency
//!   hiding the paper credits this variant with).

use super::window::WindowEngine;
pub use super::window::StreamSlot;
use crate::buffers::GpuScalar;
use gpu_sim::{BlockCtx, BlockKernel, BufId, Result};

/// The tiled PCR kernel (see module docs).
#[derive(Debug, Clone)]
pub struct TiledPcrKernel {
    /// Input coefficient buffers `[a, b, c, d]`, contiguous layout
    /// (`sys·n + row`).
    pub input: [BufId; 4],
    /// Output buffers `[a, b, c, d]` for the reduced rows, same layout.
    pub output: [BufId; 4],
    /// Rows per system.
    pub n: usize,
    /// PCR steps (`k ≥ 1`; `k = 0` batches skip this kernel entirely).
    pub k: u32,
    /// Sub-tile rows (`c · 2^k`, `c ≥ 1`).
    pub sub_tile: usize,
    /// Per-block stream slots.
    pub assignments: Vec<Vec<StreamSlot>>,
}

impl TiledPcrKernel {
    /// Shared-memory elements this kernel needs per slot: 4 arrays ×
    /// (window `2f + st` + cache `2f` + store-alignment carry `st − f`)
    /// — the Table I footprint.
    pub fn shared_elems_per_slot(k: u32, sub_tile: usize) -> usize {
        let f = (1usize << k) - 1;
        4 * ((2 * f + sub_tile) + 2 * f + sub_tile.saturating_sub(f).max(1))
    }

    /// Fig. 11(a) assignment: block `i` streams system `i` whole.
    pub fn assign_block_per_system(m: usize, n: usize) -> Vec<Vec<StreamSlot>> {
        (0..m).map(|s| vec![StreamSlot::whole(s, n)]).collect()
    }

    /// Fig. 11(b) assignment: each system split into `g` contiguous
    /// ranges, one block each (`m·g` blocks).
    pub fn assign_block_group_per_system(m: usize, n: usize, g: usize) -> Vec<Vec<StreamSlot>> {
        let g = g.max(1).min(n);
        let mut out = Vec::with_capacity(m * g);
        for sys in 0..m {
            let base = n / g;
            let extra = n % g;
            let mut lo = 0usize;
            for part in 0..g {
                let len = base + usize::from(part < extra);
                out.push(vec![StreamSlot {
                    system: sys,
                    emit_lo: lo,
                    emit_hi: lo + len,
                }]);
                lo += len;
            }
        }
        out
    }

    /// Fig. 11(c) assignment: `q` whole systems multiplexed per block
    /// (`ceil(m/q)` blocks).
    pub fn assign_multi_system_per_block(m: usize, n: usize, q: usize) -> Vec<Vec<StreamSlot>> {
        let q = q.max(1);
        (0..m.div_ceil(q))
            .map(|b| {
                (b * q..((b + 1) * q).min(m))
                    .map(|s| StreamSlot::whole(s, n))
                    .collect()
            })
            .collect()
    }
}

impl<S: GpuScalar> BlockKernel<S> for TiledPcrKernel {
    fn run_block(&self, ctx: &mut BlockCtx<'_, S>) -> Result<()> {
        let slots_cfg = &self.assignments[ctx.block_id];
        if slots_cfg.is_empty() {
            return Ok(());
        }
        let mut engine = WindowEngine::new(ctx, self.n, self.k, self.sub_tile, slots_cfg)?;
        let st = engine.st;
        let f = engine.f;
        let sti = st as isize;

        // Output-carry buffers for aligned emission.
        ctx.phase("carry_init");
        let mut carry: Vec<[usize; 4]> = Vec::with_capacity(engine.slots.len());
        for _ in 0..engine.slots.len() {
            let mut c = [0usize; 4];
            for slot_arr in c.iter_mut() {
                *slot_arr = ctx.shared_alloc((st - f).max(1))?;
            }
            carry.push(c);
        }

        let mut sh_idx: Vec<usize> = Vec::new();
        let mut g_idx: Vec<usize> = Vec::new();
        let mut tmp: Vec<S> = Vec::new();
        // Per-array register tile staging the carry roll across the
        // barrier that separates it from the emit reads.
        let mut roll_vals: [Vec<S>; 4] = Default::default();

        loop {
            let active = engine.advance(ctx, self.input)?;
            if active.is_empty() {
                break;
            }

            // ---- emit the *aligned* chunk [t0 − st, t0) -------------
            // Fresh level-k rows cover [t0 − f, t0 + st − f); the carry
            // holds [t0 − st, t0 − f) from the previous sub-tile.
            ctx.phase("emit");
            for arr in 0..4 {
                sh_idx.clear();
                g_idx.clear();
                for &g in &active {
                    let s = &engine.slots[g];
                    for i in 0..st {
                        let p = s.t0 - sti + i as isize;
                        if p >= s.emit_lo && p < s.emit_hi {
                            let sh = if i < st - f {
                                carry[g][arr] + i
                            } else {
                                s.buf[arr] + (i - (st - f))
                            };
                            sh_idx.push(sh);
                            g_idx.push(s.system * self.n + p as usize);
                        }
                    }
                }
                if !g_idx.is_empty() {
                    for (si, gi) in sh_idx.chunks(ctx.threads).zip(g_idx.chunks(ctx.threads)) {
                        ctx.sh_ld(si, &mut tmp)?;
                        ctx.st(self.output[arr], gi, &tmp)?;
                    }
                }

                // Read the next chunk's carry head [t0, t0 + st − f) —
                // this sub-tile's buf[f .. st) — into registers.
                if st > f {
                    sh_idx.clear();
                    for &g in &active {
                        for e in 0..st - f {
                            sh_idx.push(engine.slots[g].buf[arr] + f + e);
                        }
                    }
                    roll_vals[arr].clear();
                    for chunk in sh_idx.chunks(ctx.threads) {
                        ctx.sh_ld(chunk, &mut tmp)?;
                        roll_vals[arr].extend_from_slice(&tmp);
                    }
                }
            }
            // The emit phase *read* the carry words the roll below
            // *writes*, from differently-mapped lanes; without this
            // barrier that is a write-after-read race (a stream slot's
            // emit could observe the next sub-tile's carry).
            ctx.sync();
            ctx.phase("carry_roll");
            if st > f {
                for (arr, vals) in roll_vals.iter().enumerate() {
                    sh_idx.clear();
                    for &g in &active {
                        for e in 0..st - f {
                            sh_idx.push(carry[g][arr] + e);
                        }
                    }
                    for (ci, cv) in sh_idx.chunks(ctx.threads).zip(vals.chunks(ctx.threads)) {
                        ctx.sh_st(ci, cv)?;
                    }
                }
            }
            ctx.sync();
            engine.step(&active);
        }

        // ---- final flush: each slot's carry holds [t0 − st, t0 − f),
        // which covers everything not yet stored.
        ctx.phase("flush");
        for arr in 0..4 {
            g_idx.clear();
            sh_idx.clear();
            for (g, s) in engine.slots.iter().enumerate() {
                let last_t = s.t0 - sti;
                for e in 0..st - f {
                    let p = last_t + e as isize;
                    if p >= s.emit_lo && p < s.emit_hi {
                        sh_idx.push(carry[g][arr] + e);
                        g_idx.push(s.system * self.n + p as usize);
                    }
                }
            }
            if !g_idx.is_empty() {
                for (si, gi) in sh_idx.chunks(ctx.threads).zip(g_idx.chunks(ctx.threads)) {
                    ctx.sh_ld(si, &mut tmp)?;
                    ctx.st(self.output[arr], gi, &tmp)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::upload;
    use crate::consts::REGS_TILED_PCR;
    use gpu_sim::{launch, DeviceSpec, GpuMemory, LaunchConfig, LaunchResult};
    use tridiag_core::generators::random_batch;
    use tridiag_core::pcr;

    /// Run the kernel over a batch and return the reduced arrays plus
    /// the launch result.
    fn run(
        m: usize,
        n: usize,
        k: u32,
        sub_tile: usize,
        assignments: Vec<Vec<StreamSlot>>,
        threads: u32,
    ) -> (Vec<Vec<f64>>, LaunchResult) {
        let host = random_batch::<f64>(m, n, 1000 + m as u64 + n as u64 + k as u64);
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        let out = [
            mem.alloc(m * n),
            mem.alloc(m * n),
            mem.alloc(m * n),
            mem.alloc(m * n),
        ];
        let blocks = assignments.len();
        let kernel = TiledPcrKernel {
            input: [dev.a, dev.b, dev.c, dev.d],
            output: out,
            n,
            k,
            sub_tile,
            assignments,
        };
        let cfg = LaunchConfig::new("tiled_pcr", blocks, threads).with_regs(REGS_TILED_PCR);
        let res = launch(&DeviceSpec::gtx480(), &cfg, &kernel, &mut mem).unwrap();
        let arrays = out
            .iter()
            .map(|&b| mem.read(b).unwrap().to_vec())
            .collect();
        (arrays, res)
    }

    /// Exact-compare kernel output against host `pcr::reduce` for every
    /// system in the batch.
    fn assert_exact(m: usize, n: usize, k: u32, arrays: &[Vec<f64>], ctx: &str) {
        let host = random_batch::<f64>(m, n, 1000 + m as u64 + n as u64 + k as u64);
        for sys in 0..m {
            let reference = pcr::reduce(&host.system(sys).unwrap(), k).unwrap();
            let (ra, rb, rc, rd) = reference.arrays();
            for row in 0..n {
                let g = sys * n + row;
                assert_eq!(arrays[0][g], ra[row], "{ctx}: a sys {sys} row {row}");
                assert_eq!(arrays[1][g], rb[row], "{ctx}: b sys {sys} row {row}");
                assert_eq!(arrays[2][g], rc[row], "{ctx}: c sys {sys} row {row}");
                assert_eq!(arrays[3][g], rd[row], "{ctx}: d sys {sys} row {row}");
            }
        }
    }

    #[test]
    fn block_per_system_bit_exact() {
        for (m, n, k, c) in [
            (1usize, 64usize, 2u32, 1usize),
            (3, 64, 3, 1),
            (2, 100, 2, 2), // non-power-of-two n, flush across tiles
            (1, 512, 5, 1),
            (2, 96, 4, 2),
        ] {
            let st = c << k;
            let assignments = TiledPcrKernel::assign_block_per_system(m, n);
            let (arrays, _) = run(m, n, k, st, assignments, 1 << k);
            assert_exact(m, n, k, &arrays, &format!("11a m={m} n={n} k={k} c={c}"));
        }
    }

    #[test]
    fn block_group_per_system_bit_exact() {
        for (m, n, k, g) in [(1usize, 256usize, 3u32, 2usize), (2, 200, 2, 4), (1, 512, 4, 3)] {
            let st = 1usize << k;
            let assignments = TiledPcrKernel::assign_block_group_per_system(m, n, g);
            assert_eq!(assignments.len(), m * g);
            let (arrays, _) = run(m, n, k, st, assignments, 1 << k);
            assert_exact(m, n, k, &arrays, &format!("11b m={m} n={n} k={k} g={g}"));
        }
    }

    #[test]
    fn multi_system_per_block_bit_exact() {
        for (m, n, k, q) in [(4usize, 64usize, 2u32, 2usize), (5, 128, 3, 3), (8, 96, 2, 4)] {
            let st = 1usize << k;
            let assignments = TiledPcrKernel::assign_multi_system_per_block(m, n, q);
            assert_eq!(assignments.len(), m.div_ceil(q));
            let (arrays, _) = run(m, n, k, st, assignments, (q << k) as u32);
            assert_exact(m, n, k, &arrays, &format!("11c m={m} n={n} k={k} q={q}"));
        }
    }

    #[test]
    fn streaming_loads_each_row_exactly_once() {
        let (m, n, k) = (2usize, 512usize, 4u32);
        let assignments = TiledPcrKernel::assign_block_per_system(m, n);
        let (_, res) = run(m, n, k, 1 << k, assignments, 1 << k);
        // 4 arrays × m·n elements loaded exactly once, 8 B each.
        assert_eq!(
            res.stats.total.global_load_bytes,
            (4 * m * n * 8) as u64,
            "no redundant global loads in the 11(a) mapping"
        );
        // Stores: 4 arrays × m·n reduced rows.
        assert_eq!(res.stats.total.global_store_bytes, (4 * m * n * 8) as u64);
        assert!(res.stats.total.coalescing_efficiency(128) > 0.8);
    }

    #[test]
    fn partitioning_costs_halo_loads() {
        let (m, n, k, g) = (1usize, 512usize, 4u32, 4usize);
        let whole = TiledPcrKernel::assign_block_per_system(m, n);
        let split = TiledPcrKernel::assign_block_group_per_system(m, n, g);
        let (_, res_whole) = run(m, n, k, 1 << k, whole, 1 << k);
        let (_, res_split) = run(m, n, k, 1 << k, split, 1 << k);
        let halo = res_split.stats.total.global_load_bytes - res_whole.stats.total.global_load_bytes;
        // Up to 2·f(k) extra rows per internal boundary, 4 arrays × 8 B.
        let f = (1u64 << k) - 1;
        assert!(halo > 0, "partitioning must reload halos");
        assert!(halo <= (g as u64 - 1) * 2 * f * 4 * 8);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
    fn shared_footprint_matches_table1_budget() {
        let (m, n, k, c) = (1usize, 1024usize, 8u32, 1usize);
        let st = c << k;
        let assignments = TiledPcrKernel::assign_block_per_system(m, n);
        let (arrays, res) = run(m, n, k, st, assignments, 1 << k);
        assert_exact(m, n, k, &arrays, "k=8 full window");
        let elems = TiledPcrKernel::shared_elems_per_slot(k, st);
        assert_eq!(res.shared_bytes_per_block, elems * 8);
        // The paper's Table III flagship config fits 48 KiB easily.
        assert!(res.shared_bytes_per_block <= 48 * 1024);
    }

    #[test]
    fn config_validation() {
        let host = random_batch::<f64>(1, 64, 5);
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        let out = [mem.alloc(64), mem.alloc(64), mem.alloc(64), mem.alloc(64)];
        // sub_tile < 2^k
        let kernel = TiledPcrKernel {
            input: [dev.a, dev.b, dev.c, dev.d],
            output: out,
            n: 64,
            k: 3,
            sub_tile: 4,
            assignments: vec![vec![StreamSlot::whole(0, 64)]],
        };
        let cfg = LaunchConfig::new("tiled_pcr", 1, 8);
        assert!(launch(&DeviceSpec::gtx480(), &cfg, &kernel, &mut mem).is_err());
        // bad emit range
        let kernel2 = TiledPcrKernel {
            input: [dev.a, dev.b, dev.c, dev.d],
            output: out,
            n: 64,
            k: 2,
            sub_tile: 4,
            assignments: vec![vec![StreamSlot {
                system: 0,
                emit_lo: 10,
                emit_hi: 10,
            }]],
        };
        assert!(launch(&DeviceSpec::gtx480(), &cfg, &kernel2, &mut mem).is_err());
    }
}
