//! The fused tiled-PCR + p-Thomas kernel (Section III-C).
//!
//! "The idea is progressively invoking p-Thomas without waiting for
//! tiled PCR to finish processing the whole data": as each sub-tile's
//! fully-reduced rows leave the sliding window, thread `j` immediately
//! folds them into its subsystem's Thomas *forward* recurrence, which
//! lives in registers. Only the recurrence outputs `c'`/`d'` are written
//! to global memory (for the backward sweep); the reduced coefficients
//! `a, b, c, d` never round-trip through DRAM, and the second kernel
//! launch disappears.
//!
//! Versus the split pipeline, per reduced row this saves four global
//! stores (PCR output) and four global loads (p-Thomas input), at the
//! cost of a larger register footprint (`REGS_FUSED`) — exactly the
//! occupancy trade-off the paper warns about: "kernel fusion does not
//! always improve performance".
//!
//! The kernel covers the Fig. 11(a) mapping (one whole system per
//! block); the solver falls back to the split pipeline for the other
//! mappings.

use super::window::{StreamSlot, WindowEngine};
use crate::buffers::GpuScalar;
use crate::consts::{THOMAS_BWD_FLOPS, THOMAS_FWD_FLOPS};
use gpu_sim::{BlockCtx, BlockKernel, BufId, Result, SimError};

/// The fused kernel: one block per system, `2^k` threads each.
#[derive(Debug, Clone)]
pub struct FusedKernel {
    /// Input coefficient buffers `[a, b, c, d]`, contiguous layout.
    pub input: [BufId; 4],
    /// Global scratch for the forward-sweep `c'` (contiguous layout).
    pub c_prime: BufId,
    /// Global scratch for the forward-sweep `d'`.
    pub d_prime: BufId,
    /// Solution buffer (contiguous layout).
    pub x: BufId,
    /// Rows per system.
    pub n: usize,
    /// PCR steps (`k ≥ 1`).
    pub k: u32,
    /// Sub-tile rows (`c · 2^k`).
    pub sub_tile: usize,
    /// Number of systems (block `b` handles system `b`).
    pub m: usize,
}

impl<S: GpuScalar> BlockKernel<S> for FusedKernel {
    fn run_block(&self, ctx: &mut BlockCtx<'_, S>) -> Result<()> {
        let sys = ctx.block_id;
        if sys >= self.m {
            return Ok(());
        }
        let n = self.n;
        let slots = [StreamSlot::whole(sys, n)];
        let mut engine = WindowEngine::new(ctx, n, self.k, self.sub_tile, &slots)?;
        let st = engine.st;
        let f = engine.f;
        let stride = 1usize << self.k;
        let base = sys * n;

        // Per-thread Thomas forward state (registers).
        let mut cp_reg = vec![S::ZERO; stride];
        let mut dp_reg = vec![S::ZERO; stride];
        let mut started = vec![false; stride];

        // Register tile of pending (position, c', d') triples awaiting an
        // aligned store — the paper's "previous results ... in registers".
        let mut pending: Vec<(usize, S, S)> = Vec::with_capacity(st + f);

        let mut tmp: Vec<S> = Vec::new();
        let mut sh_idx: Vec<usize> = Vec::new();
        let mut g_idx: Vec<usize> = Vec::new();
        let mut cp_vals: Vec<S> = Vec::new();
        let mut dp_vals: Vec<S> = Vec::new();

        loop {
            let active = engine.advance(ctx, self.input)?;
            if active.is_empty() {
                break;
            }
            let t0 = engine.slots[0].t0;

            // ---- read this sub-tile's reduced rows from shared ------
            // (positions t0 − f .. t0 + st − f, already in the window).
            ctx.phase("window_read");
            let mut rows: [Vec<S>; 4] = Default::default();
            for arr in 0..4 {
                sh_idx.clear();
                for i in 0..st {
                    sh_idx.push(engine.slots[0].buf[arr] + i);
                }
                rows[arr].clear();
                for chunk in sh_idx.chunks(ctx.threads) {
                    ctx.sh_ld(chunk, &mut tmp)?;
                    rows[arr].extend_from_slice(&tmp);
                }
            }
            // All lanes must finish reading the window before the next
            // advance() overwrites it: the fresh region [2f, 2f + st)
            // overlaps the rows just read whenever st > 2f (c ≥ 2).
            ctx.sync();

            // ---- fold into the per-thread Thomas forward recurrence --
            let mut folded = 0u64;
            for i in 0..st {
                let p = t0 - f as isize + i as isize;
                if p < 0 || p >= n as isize {
                    continue;
                }
                let p = p as usize;
                let j = p % stride;
                let (a, b, c, d) = (rows[0][i], rows[1][i], rows[2][i], rows[3][i]);
                let (cp, dp) = if !started[j] {
                    if b == S::ZERO {
                        return Err(SimError::KernelFault(format!(
                            "zero pivot, system {sys} subsystem {j} head"
                        )));
                    }
                    started[j] = true;
                    (c / b, d / b)
                } else {
                    let denom = b - cp_reg[j] * a;
                    if denom == S::ZERO {
                        return Err(SimError::KernelFault(format!(
                            "zero pivot, system {sys} subsystem {j} row {p}"
                        )));
                    }
                    let inv = S::ONE / denom;
                    (c * inv, (d - dp_reg[j] * a) * inv)
                };
                cp_reg[j] = cp;
                dp_reg[j] = dp;
                pending.push((p, cp, dp));
                folded += 1;
            }
            ctx.flops(folded * THOMAS_FWD_FLOPS);

            // ---- aligned global stores of c'/d' ---------------------
            // Flush pending in st-sized chunks, keeping the tail for
            // alignment (the register tile).
            ctx.phase("cprime_store");
            while pending.len() >= st {
                g_idx.clear();
                cp_vals.clear();
                dp_vals.clear();
                for &(p, cp, dp) in pending.iter().take(st) {
                    g_idx.push(base + p);
                    cp_vals.push(cp);
                    dp_vals.push(dp);
                }
                pending.drain(..st);
                for (gi, cv) in g_idx.chunks(ctx.threads).zip(cp_vals.chunks(ctx.threads)) {
                    ctx.st(self.c_prime, gi, cv)?;
                }
                for (gi, dv) in g_idx.chunks(ctx.threads).zip(dp_vals.chunks(ctx.threads)) {
                    ctx.st(self.d_prime, gi, dv)?;
                }
            }
            engine.step(&active);
        }

        // Flush the register-tile remainder.
        ctx.phase("cprime_store");
        if !pending.is_empty() {
            g_idx.clear();
            cp_vals.clear();
            dp_vals.clear();
            for &(p, cp, dp) in &pending {
                g_idx.push(base + p);
                cp_vals.push(cp);
                dp_vals.push(dp);
            }
            for (gi, cv) in g_idx.chunks(ctx.threads).zip(cp_vals.chunks(ctx.threads)) {
                ctx.st(self.c_prime, gi, cv)?;
            }
            for (gi, dv) in g_idx.chunks(ctx.threads).zip(dp_vals.chunks(ctx.threads)) {
                ctx.st(self.d_prime, gi, dv)?;
            }
            pending.clear();
        }

        // ---- backward substitution per thread -----------------------
        // Thread j owns rows j, j + 2^k, … (interleaved → coalesced).
        ctx.phase("backward");
        let max_rows = n.div_ceil(stride);
        let mut x_reg = vec![S::ZERO; stride];
        let mut xv: Vec<S> = Vec::with_capacity(stride);
        let mut lane_j: Vec<usize> = Vec::with_capacity(stride);
        for r in (0..max_rows).rev() {
            g_idx.clear();
            lane_j.clear();
            for j in 0..stride {
                let p = j + r * stride;
                if p < n {
                    g_idx.push(base + p);
                    lane_j.push(j);
                }
            }
            ctx.ld(self.c_prime, &g_idx, &mut cp_vals)?;
            ctx.ld(self.d_prime, &g_idx, &mut dp_vals)?;
            xv.clear();
            for (lane, &j) in lane_j.iter().enumerate() {
                let rows_j = (n - j).div_ceil(stride);
                let x = if r + 1 == rows_j {
                    dp_vals[lane]
                } else {
                    dp_vals[lane] - cp_vals[lane] * x_reg[j]
                };
                x_reg[j] = x;
                xv.push(x);
            }
            ctx.flops(g_idx.len() as u64 * THOMAS_BWD_FLOPS);
            ctx.st(self.x, &g_idx, &xv)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::upload;
    use crate::consts::REGS_FUSED;
    use gpu_sim::{launch, DeviceSpec, GpuMemory, LaunchConfig, LaunchResult};
    use tridiag_core::generators::random_batch;

    fn run(m: usize, n: usize, k: u32, c: usize) -> (f64, LaunchResult) {
        let host = random_batch::<f64>(m, n, 77 + n as u64);
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        let cp = mem.alloc(m * n);
        let dp = mem.alloc(m * n);
        let kernel = FusedKernel {
            input: [dev.a, dev.b, dev.c, dev.d],
            c_prime: cp,
            d_prime: dp,
            x: dev.x,
            n,
            k,
            sub_tile: c << k,
            m,
        };
        let cfg = LaunchConfig::new("fused", m, 1 << k).with_regs(REGS_FUSED);
        let res = launch(&DeviceSpec::gtx480(), &cfg, &kernel, &mut mem).unwrap();
        let x = mem.read(dev.x).unwrap();
        (host.max_relative_residual(x).unwrap(), res)
    }

    #[test]
    fn solves_exactly_like_the_split_pipeline_solves() {
        for (m, n, k, c) in [
            (1usize, 64usize, 2u32, 1usize),
            (2, 100, 3, 1),
            (4, 512, 4, 2),
            (1, 1000, 5, 1),
        ] {
            let (resid, _) = run(m, n, k, c);
            assert!(resid < 1e-9, "m={m} n={n} k={k}: {resid}");
        }
    }

    #[test]
    fn fused_moves_less_global_data_than_split() {
        // Split pipeline traffic per row: PCR stores 4 + p-Thomas loads
        // 4 + stores 2 + bwd loads 2 + store 1 = 13 element moves (plus
        // the initial 4 loads). Fused: 4 loads + 2 stores + 2 bwd loads
        // + 1 store = 9.
        let (m, n, k) = (2usize, 512usize, 4u32);
        let (_, fused) = run(m, n, k, 1);
        let elem = 8u64;
        let rows = (m * n) as u64;
        let bytes = fused.stats.total.global_bytes();
        // 4 ld + 2 st(c',d') + 2 ld(bwd) + 1 st(x) = 9 element moves.
        assert_eq!(bytes, 9 * rows * elem);
        assert!(fused.stats.total.coalescing_efficiency(128) > 0.8);
    }

    #[test]
    fn single_launch_vs_two() {
        // The timing benefit of fusion shows up as one launch overhead
        // instead of two; verified at the solver level. Here just assert
        // the kernel completes whole batches in one launch.
        let (resid, res) = run(8, 256, 3, 1);
        assert!(resid < 1e-9);
        assert_eq!(res.stats.blocks, 8);
    }
}
