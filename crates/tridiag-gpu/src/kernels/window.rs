//! The buffered-sliding-window streaming engine shared by the tiled PCR
//! kernel and the fused tiled-PCR + p-Thomas kernel.
//!
//! [`WindowEngine::advance`] performs one sub-tile step for every live
//! stream slot: coalesced global loads of the fresh rows, then `k`
//! lockstep PCR levels through the in-place shifting window (see the
//! module docs of [`super::tiled_pcr`] for the buffer math). After each
//! `advance`, the fresh level-`k` rows for slot `g` sit in shared memory
//! at `slot(g).buf[arr] + i` for `i < sub_tile`, covering positions
//! `[t0 − f, t0 + st − f)`; the caller emits them however it likes
//! (store to global, or feed the Thomas recurrence directly in the
//! fused kernel), then calls [`WindowEngine::step`].

use crate::buffers::GpuScalar;
use crate::consts::PCR_FLOPS_PER_ROW;
use gpu_sim::{BlockCtx, BufId, Result, SimError};
use tridiag_core::cr::{reduce_row, Row};

/// One PCR stream: a thread group reducing rows `[emit_lo, emit_hi)` of
/// `system`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSlot {
    /// System index in the batch.
    pub system: usize,
    /// First row this slot emits.
    pub emit_lo: usize,
    /// One past the last row this slot emits.
    pub emit_hi: usize,
}

impl StreamSlot {
    /// A slot covering one whole system (Fig. 11(a) mapping).
    pub fn whole(system: usize, n: usize) -> Self {
        StreamSlot {
            system,
            emit_lo: 0,
            emit_hi: n,
        }
    }
}

/// Per-slot streaming state (shared-memory bases + stream position).
pub(crate) struct SlotState {
    pub system: usize,
    pub emit_lo: isize,
    pub emit_hi: isize,
    /// One past the last *real* input position (`min(n, emit_hi + f)`).
    pub in_end: isize,
    /// Current sub-tile start (input positions `[t0, t0 + st)`).
    pub t0: isize,
    /// Shared window base per array.
    pub buf: [usize; 4],
    /// Shared dependency-cache base per array.
    pub cache: [usize; 4],
}

impl SlotState {
    pub fn done(&self, f: isize) -> bool {
        self.t0 >= self.emit_hi + f
    }
}

/// The streaming engine (see module docs).
pub(crate) struct WindowEngine {
    pub n: usize,
    pub k: usize,
    pub st: usize,
    pub f: usize,
    two_f: usize,
    pub slots: Vec<SlotState>,
    // Reusable lane scratch (indices only; element values are typed per
    // method so the engine stays scalar-generic).
    g_idx: Vec<usize>,
    g_lane: Vec<usize>,
    sh_idx: Vec<usize>,
}

impl WindowEngine {
    /// Carve shared memory for the given slots and initialise the
    /// dependency caches with identity rows.
    pub fn new<S: GpuScalar>(
        ctx: &mut BlockCtx<'_, S>,
        n: usize,
        k: u32,
        st: usize,
        slots_cfg: &[StreamSlot],
    ) -> Result<Self> {
        let k = k as usize;
        if k == 0 {
            return Err(SimError::InvalidLaunch(
                "window streaming with k = 0 is a no-op; skip the kernel".into(),
            ));
        }
        if st < (1usize << k) {
            return Err(SimError::InvalidLaunch(format!(
                "sub_tile {st} smaller than 2^k = {}",
                1usize << k
            )));
        }
        let f = (1usize << k) - 1;
        let two_f = 2 * f;
        let buf_len = two_f + st;

        ctx.phase("window_init");
        let mut slots = Vec::with_capacity(slots_cfg.len());
        for s in slots_cfg {
            if s.emit_lo >= s.emit_hi || s.emit_hi > n {
                return Err(SimError::InvalidLaunch(format!(
                    "bad emit range {}..{} for n = {n}",
                    s.emit_lo, s.emit_hi
                )));
            }
            let mut buf = [0usize; 4];
            let mut cache = [0usize; 4];
            for arr in 0..4 {
                buf[arr] = ctx.shared_alloc(buf_len)?;
                cache[arr] = ctx.shared_alloc(two_f)?;
            }
            let in_start = (s.emit_lo as isize - f as isize).max(0);
            slots.push(SlotState {
                system: s.system,
                emit_lo: s.emit_lo as isize,
                emit_hi: s.emit_hi as isize,
                in_end: ((s.emit_hi + f) as isize).min(n as isize),
                t0: in_start,
                buf,
                cache,
            });
        }

        // Identity rows for the positions preceding each stream.
        let mut idx: Vec<usize> = Vec::new();
        let mut val: Vec<S> = Vec::new();
        for slot in &slots {
            for arr in 0..4 {
                let ident = if arr == 1 { S::ONE } else { S::ZERO };
                for e in 0..two_f {
                    idx.push(slot.cache[arr] + e);
                    val.push(ident);
                }
            }
        }
        for (ci, cv) in idx.chunks(ctx.threads).zip(val.chunks(ctx.threads)) {
            ctx.sh_st(ci, cv)?;
        }
        ctx.sync();

        Ok(Self {
            n,
            k,
            st,
            f,
            two_f,
            slots,
            g_idx: Vec::new(),
            g_lane: Vec::new(),
            sh_idx: Vec::new(),
        })
    }

    /// Slot indices still streaming.
    pub fn active(&self) -> Vec<usize> {
        let f = self.f as isize;
        (0..self.slots.len())
            .filter(|&g| !self.slots[g].done(f))
            .collect()
    }

    /// Load the next sub-tile for every active slot and run the `k`
    /// lockstep PCR levels. Returns the active slot list (empty = all
    /// streams finished; nothing was done).
    pub fn advance<S: GpuScalar>(
        &mut self,
        ctx: &mut BlockCtx<'_, S>,
        input: [BufId; 4],
    ) -> Result<Vec<usize>> {
        let active = self.active();
        if active.is_empty() {
            return Ok(active);
        }
        let st = self.st;
        let two_f = self.two_f;
        let n = self.n;

        let mut tmp: Vec<S> = Vec::new();
        let mut sh_val: Vec<S> = Vec::new();
        let mut loaded: [Vec<S>; 4] = Default::default();

        // ---- 1. coalesced global loads of the fresh sub-tile --------
        ctx.phase("window_load");
        self.g_idx.clear();
        self.g_lane.clear();
        for (rank, &g) in active.iter().enumerate() {
            let s = &self.slots[g];
            for i in 0..st {
                let p = s.t0 + i as isize;
                if p >= 0 && p < s.in_end {
                    self.g_idx.push(s.system * n + p as usize);
                    self.g_lane.push(rank * st + i);
                }
            }
        }
        for arr in 0..4 {
            loaded[arr].clear();
            for chunk in self.g_idx.chunks(ctx.threads) {
                ctx.ld(input[arr], chunk, &mut tmp)?;
                loaded[arr].extend_from_slice(&tmp);
            }
        }
        for arr in 0..4 {
            let ident = if arr == 1 { S::ONE } else { S::ZERO };
            self.sh_idx.clear();
            sh_val.clear();
            for &g in &active {
                for i in 0..st {
                    self.sh_idx.push(self.slots[g].buf[arr] + two_f + i);
                    sh_val.push(ident);
                }
            }
            for (pos, &lane) in self.g_lane.iter().enumerate() {
                sh_val[lane] = loaded[arr][pos];
            }
            for (ci, cv) in self.sh_idx.chunks(ctx.threads).zip(sh_val.chunks(ctx.threads)) {
                ctx.sh_st(ci, cv)?;
            }
        }
        ctx.sync();

        // ---- 2. k lockstep PCR levels -------------------------------
        let mut tri: Vec<Vec<S>> = (0..12).map(|_| Vec::new()).collect();
        let mut out_vals: [Vec<S>; 4] = Default::default();
        for j in 1..=self.k {
            let s_half = 1usize << (j - 1);
            let two_s = 2 * s_half;
            let off_j = two_f - 2 * ((1usize << j) - 1);
            let cache_off = 2 * (s_half - 1);

            // (a) splice cache_{j-1} in front of the fresh region.
            ctx.phase("splice");
            for arr in 0..4 {
                self.sh_idx.clear();
                for &g in &active {
                    for e in 0..two_s {
                        self.sh_idx.push(self.slots[g].cache[arr] + cache_off + e);
                    }
                }
                sh_val.clear();
                for chunk in self.sh_idx.chunks(ctx.threads) {
                    ctx.sh_ld(chunk, &mut tmp)?;
                    sh_val.extend_from_slice(&tmp);
                }
                self.sh_idx.clear();
                for &g in &active {
                    for e in 0..two_s {
                        self.sh_idx.push(self.slots[g].buf[arr] + off_j + e);
                    }
                }
                for (ci, cv) in self.sh_idx.chunks(ctx.threads).zip(sh_val.chunks(ctx.threads)) {
                    ctx.sh_st(ci, cv)?;
                }
            }
            ctx.sync();

            // (b) lockstep read of the three dependency rows.
            ctx.phase("pcr_level");
            for arr in 0..4 {
                for (d, dist) in [0usize, s_half, two_s].into_iter().enumerate() {
                    let dst = &mut tri[arr * 3 + d];
                    dst.clear();
                    self.sh_idx.clear();
                    for &g in &active {
                        for i in 0..st {
                            self.sh_idx.push(self.slots[g].buf[arr] + off_j + dist + i);
                        }
                    }
                    for chunk in self.sh_idx.chunks(ctx.threads) {
                        ctx.sh_ld(chunk, &mut tmp)?;
                        dst.extend_from_slice(&tmp);
                    }
                }
            }
            ctx.sync();

            // Combine (Eqs. 5–6) per lane.
            let lane_count = active.len() * st;
            for ov in out_vals.iter_mut() {
                ov.clear();
                ov.reserve(lane_count);
            }
            for lane in 0..lane_count {
                let row_at = |d: usize| Row {
                    a: tri[d][lane],
                    b: tri[3 + d][lane],
                    c: tri[6 + d][lane],
                    d: tri[9 + d][lane],
                };
                let r = reduce_row(row_at(0), row_at(1), row_at(2), lane)
                    .map_err(|e| SimError::KernelFault(e.to_string()))?;
                out_vals[0].push(r.a);
                out_vals[1].push(r.b);
                out_vals[2].push(r.c);
                out_vals[3].push(r.d);
            }
            ctx.flops(lane_count as u64 * PCR_FLOPS_PER_ROW);

            // (c) in-place write, then refresh cache_{j-1} from the
            // untouched span tail.
            for arr in 0..4 {
                self.sh_idx.clear();
                for &g in &active {
                    for i in 0..st {
                        self.sh_idx.push(self.slots[g].buf[arr] + off_j + i);
                    }
                }
                for (ci, cv) in self
                    .sh_idx
                    .chunks(ctx.threads)
                    .zip(out_vals[arr].chunks(ctx.threads))
                {
                    ctx.sh_st(ci, cv)?;
                }

                self.sh_idx.clear();
                for &g in &active {
                    for e in 0..two_s {
                        self.sh_idx.push(self.slots[g].buf[arr] + off_j + st + e);
                    }
                }
                sh_val.clear();
                for chunk in self.sh_idx.chunks(ctx.threads) {
                    ctx.sh_ld(chunk, &mut tmp)?;
                    sh_val.extend_from_slice(&tmp);
                }
                self.sh_idx.clear();
                for &g in &active {
                    for e in 0..two_s {
                        self.sh_idx.push(self.slots[g].cache[arr] + cache_off + e);
                    }
                }
                for (ci, cv) in self.sh_idx.chunks(ctx.threads).zip(sh_val.chunks(ctx.threads)) {
                    ctx.sh_st(ci, cv)?;
                }
            }
            ctx.sync();
        }
        Ok(active)
    }

    /// Advance every active slot's stream position by one sub-tile.
    pub fn step(&mut self, active: &[usize]) {
        for &g in active {
            self.slots[g].t0 += self.st as isize;
        }
    }
}
