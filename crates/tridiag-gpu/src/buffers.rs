//! Host ↔ device transfer of tridiagonal batches.

use gpu_sim::{BufId, Elem, GpuMemory};
use tridiag_core::{Layout, Scalar, SystemBatch};

/// Marker uniting the host scalar trait with the simulator element
/// trait (both are implemented by `f32` and `f64`).
pub trait GpuScalar: Scalar + Elem {}
impl GpuScalar for f32 {}
impl GpuScalar for f64 {}

/// A batch resident in simulated device memory: four coefficient
/// buffers plus the solution buffer, with the layout metadata needed to
/// address them.
#[derive(Debug, Clone, Copy)]
pub struct DeviceBatch {
    /// Sub-diagonal buffer.
    pub a: BufId,
    /// Main-diagonal buffer.
    pub b: BufId,
    /// Super-diagonal buffer.
    pub c: BufId,
    /// Right-hand-side buffer.
    pub d: BufId,
    /// Solution buffer (written by solve kernels).
    pub x: BufId,
    /// Number of systems.
    pub m: usize,
    /// Unknowns per system.
    pub n: usize,
    /// Memory layout of all five buffers.
    pub layout: Layout,
}

impl DeviceBatch {
    /// Flat element index of `(sys, row)`.
    #[inline]
    pub fn index(&self, sys: usize, row: usize) -> usize {
        self.layout.index(sys, row, self.m, self.n)
    }

    /// Total elements per buffer.
    pub fn total(&self) -> usize {
        self.m * self.n
    }
}

/// Upload a host batch ("cudaMemcpy H→D"), preserving its layout.
pub fn upload<S: GpuScalar>(mem: &mut GpuMemory<S>, batch: &SystemBatch<S>) -> DeviceBatch {
    let (a, b, c, d) = batch.arrays();
    DeviceBatch {
        a: mem.alloc_from(a.to_vec()),
        b: mem.alloc_from(b.to_vec()),
        c: mem.alloc_from(c.to_vec()),
        d: mem.alloc_from(d.to_vec()),
        x: mem.alloc(batch.total_len()),
        m: batch.num_systems(),
        n: batch.system_len(),
        layout: batch.layout(),
    }
}

/// Read the solution buffer back to the host ("cudaMemcpy D→H").
pub fn download_solution<S: GpuScalar>(
    mem: &GpuMemory<S>,
    batch: &DeviceBatch,
) -> gpu_sim::Result<Vec<S>> {
    Ok(mem.read(batch.x)?.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::generators::random_batch;

    #[test]
    fn upload_round_trip() {
        let host = random_batch::<f64>(3, 8, 1).to_layout(Layout::Interleaved);
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        assert_eq!(dev.m, 3);
        assert_eq!(dev.n, 8);
        assert_eq!(dev.layout, Layout::Interleaved);
        let (ha, _, _, hd) = host.arrays();
        assert_eq!(mem.read(dev.a).unwrap(), ha);
        assert_eq!(mem.read(dev.d).unwrap(), hd);
        assert_eq!(mem.read(dev.x).unwrap().len(), 24);
        assert_eq!(dev.index(1, 2), 2 * 3 + 1);
    }
}
