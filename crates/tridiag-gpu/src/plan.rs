//! Declarative solve plans: the pure planning half of the solver.
//!
//! The paper's runtime is really a small pipeline compiler — the
//! transition rule (Table II/III) and the grid-mapping choice (Fig. 11)
//! *decide* a sequence of kernel launches; the launches then execute
//! it. [`SolvePlan::build`] is that deciding half made explicit: a
//! deterministic function from `(DeviceSpec, GpuSolverConfig, batch
//! geometry, scalar width)` to an ordered list of typed [`Step`]s —
//! layout conversions, buffer uploads/allocations, kernel launches with
//! full grid/block/register configuration and buffer bindings, and the
//! final download — with **no execution**. The
//! [`crate::executor::PlanExecutor`] runs any plan; `describe()` and
//! `to_json()` expose it for inspection (`tridiag plan`,
//! `solve --dry-run`) without ever touching the simulator.
//!
//! Planner invariants (checked by [`SolvePlan::validate`]):
//! - buffer slots are created (uploaded or allocated) exactly once, in
//!   slot order — so slot *i* maps to the *i*-th device allocation and
//!   the executor reproduces the monolithic solver's `BufId`s exactly;
//! - every launch binding refers to a slot created by an earlier step;
//! - exactly one download, after the last launch.

use crate::consts::{REGS_FUSED, REGS_PTHOMAS, REGS_TILED_PCR};
use crate::kernels::p_thomas::AddrMap;
use crate::kernels::tiled_pcr::{StreamSlot, TiledPcrKernel};
use crate::solver::{CostModel, GpuSolverConfig, LayoutChoice, MappingVariant};
use gpu_sim::json::schema::Check;
use gpu_sim::{DeviceGroup, DeviceSpec, Json, Result, SimError};
use tridiag_core::transition::TransitionPolicy;
use tridiag_core::Layout;

pub mod cost;

/// Index into [`SolvePlan::buffers`] — the plan-level name of a device
/// buffer (the executor maps each slot to a concrete `BufId`).
pub type Slot = usize;

/// Which host coefficient array an upload step reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoefArray {
    /// Sub-diagonal `a`.
    Lower,
    /// Main diagonal `b`.
    Diag,
    /// Super-diagonal `c`.
    Upper,
    /// Right-hand side `d`.
    Rhs,
}

impl CoefArray {
    /// Conventional one-letter name (`a`/`b`/`c`/`d`).
    pub fn label(self) -> &'static str {
        match self {
            CoefArray::Lower => "a",
            CoefArray::Diag => "b",
            CoefArray::Upper => "c",
            CoefArray::Rhs => "d",
        }
    }
}

/// One device buffer the plan creates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferDecl {
    /// Role of the buffer (for humans and JSON; slots are the identity).
    pub name: &'static str,
    /// Elements allocated.
    pub elems: usize,
}

/// The kernel a launch step runs, with its buffer bindings as slots.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelOp {
    /// [`crate::kernels::p_thomas::PThomasKernel`].
    PThomas {
        /// Sub-diagonal buffer.
        a: Slot,
        /// Main-diagonal buffer.
        b: Slot,
        /// Super-diagonal buffer.
        c: Slot,
        /// Right-hand-side buffer.
        d: Slot,
        /// `c'` scratch.
        c_prime: Slot,
        /// `d'` scratch.
        d_prime: Slot,
        /// Solution buffer.
        x: Slot,
        /// Addressing scheme.
        map: AddrMap,
    },
    /// [`TiledPcrKernel`] with precomputed Fig. 11 block assignments.
    TiledPcr {
        /// Input coefficient buffers `[a, b, c, d]`.
        input: [Slot; 4],
        /// Output coefficient buffers `[a, b, c, d]`.
        output: [Slot; 4],
        /// Rows per system.
        n: usize,
        /// PCR steps.
        k: u32,
        /// Sub-tile rows (`c · 2^k`).
        sub_tile: usize,
        /// Per-block stream slots (the resolved grid mapping).
        assignments: Vec<Vec<StreamSlot>>,
    },
    /// [`crate::kernels::fused::FusedKernel`] (Section III-C).
    Fused {
        /// Input coefficient buffers `[a, b, c, d]`.
        input: [Slot; 4],
        /// `c'` scratch.
        c_prime: Slot,
        /// `d'` scratch.
        d_prime: Slot,
        /// Solution buffer.
        x: Slot,
        /// Rows per system.
        n: usize,
        /// PCR steps.
        k: u32,
        /// Sub-tile rows.
        sub_tile: usize,
        /// Number of systems.
        m: usize,
    },
}

impl KernelOp {
    /// Every slot the op binds, in field order.
    pub fn binds(&self) -> Vec<Slot> {
        match self {
            KernelOp::PThomas {
                a,
                b,
                c,
                d,
                c_prime,
                d_prime,
                x,
                ..
            } => vec![*a, *b, *c, *d, *c_prime, *d_prime, *x],
            KernelOp::TiledPcr { input, output, .. } => {
                input.iter().chain(output.iter()).copied().collect()
            }
            KernelOp::Fused {
                input,
                c_prime,
                d_prime,
                x,
                ..
            } => input
                .iter()
                .copied()
                .chain([*c_prime, *d_prime, *x])
                .collect(),
        }
    }

    /// Slots the kernel *reads* as inputs: the coefficient buffers.
    /// The `c'`/`d'` scratch is written before it is read within the
    /// same launch, so it is a write, not an input dependency — this
    /// is the dataflow signature [`crate::verify`] interprets.
    pub fn reads(&self) -> Vec<Slot> {
        match self {
            KernelOp::PThomas { a, b, c, d, .. } => vec![*a, *b, *c, *d],
            KernelOp::TiledPcr { input, .. } => input.to_vec(),
            KernelOp::Fused { input, .. } => input.to_vec(),
        }
    }

    /// Slots the kernel *writes*: outputs and write-first scratch.
    pub fn writes(&self) -> Vec<Slot> {
        match self {
            KernelOp::PThomas {
                c_prime, d_prime, x, ..
            } => vec![*c_prime, *d_prime, *x],
            KernelOp::TiledPcr { output, .. } => output.to_vec(),
            KernelOp::Fused {
                c_prime, d_prime, x, ..
            } => vec![*c_prime, *d_prime, *x],
        }
    }
}

/// One scheduled kernel launch: the full `LaunchConfig` plus bindings.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchStep {
    /// Kernel name (becomes the launch config / report name).
    pub name: &'static str,
    /// Grid size in blocks.
    pub grid_blocks: usize,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Registers per thread (occupancy input).
    pub regs_per_thread: u32,
    /// The kernel and its buffer bindings.
    pub op: KernelOp,
}

/// One step of a solve plan, in execution order.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Convert the host batch to the layout the pipeline addresses.
    Convert {
        /// Target layout.
        to: Layout,
    },
    /// Upload one coefficient array ("cudaMemcpy H→D") into a slot.
    Upload {
        /// Destination slot.
        slot: Slot,
        /// Source array in the (converted) host batch.
        source: CoefArray,
    },
    /// Allocate an uninitialized device buffer (scratch or output).
    Alloc {
        /// Slot to create.
        slot: Slot,
    },
    /// Launch a kernel.
    Launch(LaunchStep),
    /// Read a buffer back to the host ("cudaMemcpy D→H").
    Download {
        /// Source slot (the solution buffer).
        slot: Slot,
    },
    /// Reorder the downloaded solution from the pipeline layout back to
    /// the caller's batch layout.
    ConvertBack {
        /// Layout the downloaded buffer is in.
        from: Layout,
    },
}

/// A complete, inspectable description of one solve: the pipeline
/// decisions (`k`, mapping, fusion) and the full step sequence, with no
/// execution state.
#[derive(Debug, Clone, PartialEq)]
pub struct SolvePlan {
    /// Device the plan was built for.
    pub device: &'static str,
    /// Solver configuration the planner ran under.
    pub config: GpuSolverConfig,
    /// Number of systems.
    pub m: usize,
    /// Rows per system.
    pub n: usize,
    /// Scalar width in bytes (4 or 8).
    pub elem_bytes: usize,
    /// Precision label (`"f32"` / `"f64"`).
    pub precision: &'static str,
    /// PCR steps chosen by the transition policy (after the shared
    /// memory and block-size clamps).
    pub k: u32,
    /// Resolved grid mapping for the PCR stage.
    pub mapping: MappingVariant,
    /// Whether the fused single-kernel pipeline runs.
    pub fused: bool,
    /// Device-side layout of the coefficient buffers.
    pub layout: Layout,
    /// Layout the caller's batch arrives (and leaves) in. When it
    /// equals [`SolvePlan::layout`] the `Convert`/`ConvertBack` steps
    /// are elided — the batch is uploaded as-is.
    pub host_layout: Layout,
    /// Buffers the plan creates, indexed by slot.
    pub buffers: Vec<BufferDecl>,
    /// The step sequence.
    pub steps: Vec<Step>,
}

/// Largest `k` whose tiled-PCR window still fits `spec`'s shared memory
/// at sub-tile scale `c` and element size `bytes`.
pub fn max_k_for_shared(spec: &DeviceSpec, c: usize, bytes: usize) -> u32 {
    let mut k = 0u32;
    while k < 20 {
        let st = c.max(1) << (k + 1);
        let elems = TiledPcrKernel::shared_elems_per_slot(k + 1, st);
        if elems * bytes > spec.max_shared_per_block {
            break;
        }
        k += 1;
    }
    k
}

impl SolvePlan {
    /// Plan a solve of `m` systems of `n` rows at `elem_bytes` scalar
    /// width on `spec` under `config`. Pure: no device state is touched.
    ///
    /// Fails with [`SimError::InvalidPlan`] on an empty geometry, an
    /// unsupported scalar width, or a liveness-based peak resident
    /// footprint (see [`crate::verify::peak_resident_bytes`]) beyond
    /// the device's global memory.
    pub fn build(
        spec: &DeviceSpec,
        config: &GpuSolverConfig,
        m: usize,
        n: usize,
        elem_bytes: usize,
    ) -> Result<SolvePlan> {
        Self::build_for_host(spec, config, Layout::Contiguous, m, n, elem_bytes)
    }

    /// [`SolvePlan::build`] for a batch that arrives in `host_layout`.
    ///
    /// The pipeline decisions are identical — `host_layout` is not a
    /// preference, it is a fact about the caller's buffers — but when
    /// it matches the decided device layout the `Convert` and
    /// `ConvertBack` steps are elided: the coefficient arrays upload
    /// as-is and the solution downloads straight into the caller's
    /// layout. [`SolvePlan::build`] is the `Contiguous` special case
    /// (what [`tridiag_core::SystemBatch::from_systems`] produces).
    pub fn build_for_host(
        spec: &DeviceSpec,
        config: &GpuSolverConfig,
        host_layout: Layout,
        m: usize,
        n: usize,
        elem_bytes: usize,
    ) -> Result<SolvePlan> {
        if m == 0 || n == 0 {
            return Err(SimError::InvalidPlan(format!(
                "empty batch geometry: m = {m}, n = {n}"
            )));
        }
        let precision = match elem_bytes {
            4 => "f32",
            8 => "f64",
            other => {
                return Err(SimError::InvalidPlan(format!(
                    "unsupported scalar width: {other} bytes (expected 4 or 8)"
                )))
            }
        };
        // Every pipeline decision — layout, mapping, fusion, k — is
        // made in one place, by the cost module.
        let decision = cost::decide(spec, config, m, n, elem_bytes);
        let k = decision.k;
        // Elide conversions when the batch arrives already interleaved
        // and the pipeline wants it interleaved. The hybrid pipeline's
        // contiguous->contiguous Convert is a no-op but is *kept*: the
        // legacy plan shapes are pinned byte-exactly by the golden
        // snapshots, and the executor's no-op clone costs nothing.
        let elide = host_layout == decision.layout && host_layout == Layout::Interleaved;

        let total = m * n;
        let mut buffers: Vec<BufferDecl> = Vec::new();
        let mut steps: Vec<Step> = Vec::new();
        // The five coefficient/solution buffers open every pipeline, in
        // upload order — slot i is the i-th device allocation.
        let create = |buffers: &mut Vec<BufferDecl>,
                          steps: &mut Vec<Step>,
                          name: &'static str,
                          source: Option<CoefArray>|
         -> Slot {
            let slot = buffers.len();
            buffers.push(BufferDecl { name, elems: total });
            steps.push(match source {
                Some(src) => Step::Upload { slot, source: src },
                None => Step::Alloc { slot },
            });
            slot
        };

        if k == 0 {
            // ---- pure p-Thomas on the device-layout batch -----------
            if !elide {
                steps.push(Step::Convert {
                    to: decision.layout,
                });
            }
            let a = create(&mut buffers, &mut steps, "a", Some(CoefArray::Lower));
            let b = create(&mut buffers, &mut steps, "b", Some(CoefArray::Diag));
            let cc = create(&mut buffers, &mut steps, "c", Some(CoefArray::Upper));
            let d = create(&mut buffers, &mut steps, "d", Some(CoefArray::Rhs));
            let x = create(&mut buffers, &mut steps, "x", None);
            let cp = create(&mut buffers, &mut steps, "c_prime", None);
            let dp = create(&mut buffers, &mut steps, "d_prime", None);
            let map = match decision.layout {
                Layout::Interleaved => AddrMap::Interleaved { m, n },
                // The uncoalesced strawman: one thread per system over
                // system-major rows (kept for the layout ablation).
                Layout::Contiguous => AddrMap::Contiguous { m, n },
            };
            steps.push(Step::Launch(LaunchStep {
                name: "p_thomas",
                grid_blocks: m.div_ceil(config.pthomas_block as usize),
                threads_per_block: config.pthomas_block.min(m as u32).max(1),
                regs_per_thread: REGS_PTHOMAS,
                op: KernelOp::PThomas {
                    a,
                    b,
                    c: cc,
                    d,
                    c_prime: cp,
                    d_prime: dp,
                    x,
                    map,
                },
            }));
            steps.push(Step::Download { slot: x });
            if !elide {
                steps.push(Step::ConvertBack {
                    from: decision.layout,
                });
            }
        } else {
            if !elide {
                steps.push(Step::Convert {
                    to: Layout::Contiguous,
                });
            }
            let a = create(&mut buffers, &mut steps, "a", Some(CoefArray::Lower));
            let b = create(&mut buffers, &mut steps, "b", Some(CoefArray::Diag));
            let cc = create(&mut buffers, &mut steps, "c", Some(CoefArray::Upper));
            let d = create(&mut buffers, &mut steps, "d", Some(CoefArray::Rhs));
            let x = create(&mut buffers, &mut steps, "x", None);
            let c = config.sub_tile_scale.max(1);
            let st = c << k;
            let mapping = decision.mapping;
            if decision.fused {
                let cp = create(&mut buffers, &mut steps, "c_prime", None);
                let dp = create(&mut buffers, &mut steps, "d_prime", None);
                steps.push(Step::Launch(LaunchStep {
                    name: "fused_pcr_thomas",
                    grid_blocks: m,
                    threads_per_block: 1 << k,
                    regs_per_thread: REGS_FUSED,
                    op: KernelOp::Fused {
                        input: [a, b, cc, d],
                        c_prime: cp,
                        d_prime: dp,
                        x,
                        n,
                        k,
                        sub_tile: st,
                        m,
                    },
                }));
            } else {
                let (assignments, threads) = match mapping {
                    MappingVariant::BlockPerSystem => {
                        (TiledPcrKernel::assign_block_per_system(m, n), 1u32 << k)
                    }
                    MappingVariant::BlockGroupPerSystem(g) => (
                        TiledPcrKernel::assign_block_group_per_system(m, n, g),
                        1u32 << k,
                    ),
                    MappingVariant::MultiSystemPerBlock(q) => (
                        TiledPcrKernel::assign_multi_system_per_block(m, n, q),
                        ((q as u32) << k).min(spec.max_threads_per_block),
                    ),
                    MappingVariant::Auto => {
                        return Err(SimError::InvalidPlan(
                            "grid mapping failed to resolve".into(),
                        ))
                    }
                };
                let out = [
                    create(&mut buffers, &mut steps, "out_a", None),
                    create(&mut buffers, &mut steps, "out_b", None),
                    create(&mut buffers, &mut steps, "out_c", None),
                    create(&mut buffers, &mut steps, "out_d", None),
                ];
                steps.push(Step::Launch(LaunchStep {
                    name: "tiled_pcr",
                    grid_blocks: assignments.len(),
                    threads_per_block: threads,
                    regs_per_thread: REGS_TILED_PCR,
                    op: KernelOp::TiledPcr {
                        input: [a, b, cc, d],
                        output: out,
                        n,
                        k,
                        sub_tile: st,
                        assignments,
                    },
                }));
                // p-Thomas over the 2^k·M interleaved subsystems.
                let cp = create(&mut buffers, &mut steps, "c_prime", None);
                let dp = create(&mut buffers, &mut steps, "d_prime", None);
                let map = AddrMap::HybridSubsystems { m, n, k };
                let total_threads = map.num_threads();
                let tpb = config.pthomas_block.min(total_threads as u32).max(1);
                steps.push(Step::Launch(LaunchStep {
                    name: "p_thomas",
                    grid_blocks: total_threads.div_ceil(tpb as usize),
                    threads_per_block: tpb,
                    regs_per_thread: REGS_PTHOMAS,
                    op: KernelOp::PThomas {
                        a: out[0],
                        b: out[1],
                        c: out[2],
                        d: out[3],
                        c_prime: cp,
                        d_prime: dp,
                        x,
                        map,
                    },
                }));
            }
            steps.push(Step::Download { slot: x });
            if !elide {
                steps.push(Step::ConvertBack {
                    from: Layout::Contiguous,
                });
            }
        }

        let plan = SolvePlan {
            device: spec.name,
            config: *config,
            m,
            n,
            elem_bytes,
            precision,
            k,
            mapping: decision.mapping,
            fused: decision.fused,
            layout: decision.layout,
            host_layout,
            buffers,
            steps,
        };
        plan.validate().map_err(SimError::InvalidPlan)?;
        // One memory model: the OOM check is the verifier's
        // liveness-based high-water mark — an exact peak-bytes
        // certificate, not the sum of allocations (buffers that die
        // before later scratch is allocated don't count twice).
        let (peak, _) = crate::verify::peak_resident_bytes(&plan);
        if peak > spec.global_mem_bytes {
            // A single system that outgrows one device is exactly what
            // the distributed path exists for — name it in the error so
            // the caller learns the way out, not just the wall.
            let hint = if m == 1 {
                "; a single system this large can be split across devices \
                 with a distributed plan (solve --split-n)"
            } else {
                ""
            };
            return Err(SimError::InvalidPlan(format!(
                "peak resident device memory {peak} bytes exceeds {} global memory \
                 ({} bytes) for m = {m}, n = {n} at {precision}{hint}",
                spec.name, spec.global_mem_bytes
            )));
        }
        Ok(plan)
    }

    /// Total device elements across every buffer the plan creates.
    pub fn device_elems(&self) -> usize {
        self.buffers.iter().map(|b| b.elems).sum()
    }

    /// Total device bytes across every buffer the plan creates.
    pub fn device_bytes(&self) -> usize {
        self.device_elems() * self.elem_bytes
    }

    /// The launch steps, in order.
    pub fn launches(&self) -> impl Iterator<Item = &LaunchStep> {
        self.steps.iter().filter_map(|s| match s {
            Step::Launch(ls) => Some(ls),
            _ => None,
        })
    }

    /// Structural validity: slots in range and created exactly once in
    /// slot order, bindings only to already-created slots, exactly one
    /// download, non-degenerate launch geometry. Returns the first
    /// problem found.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.buffers.is_empty() {
            return Err("plan declares no buffers".into());
        }
        if let Some((i, b)) = self.buffers.iter().enumerate().find(|(_, b)| b.elems == 0) {
            return Err(format!("buffer slot {i} ({}) has zero elements", b.name));
        }
        let mut created = vec![false; self.buffers.len()];
        let mut creations = 0usize;
        let mut downloads = 0usize;
        for (i, step) in self.steps.iter().enumerate() {
            let mut create = |slot: Slot| -> std::result::Result<(), String> {
                if slot >= created.len() {
                    return Err(format!(
                        "step {i} creates slot {slot}, but only {} buffers are declared",
                        created.len()
                    ));
                }
                if created[slot] {
                    return Err(format!("step {i} creates slot {slot} twice"));
                }
                if slot != creations {
                    return Err(format!(
                        "step {i} creates slot {slot} out of order (expected slot {creations})"
                    ));
                }
                created[slot] = true;
                creations += 1;
                Ok(())
            };
            match step {
                Step::Convert { .. } | Step::ConvertBack { .. } => {}
                Step::Upload { slot, .. } | Step::Alloc { slot } => create(*slot)?,
                Step::Launch(ls) => {
                    if ls.grid_blocks == 0 || ls.threads_per_block == 0 {
                        return Err(format!(
                            "step {i} launches {} with an empty grid ({} blocks x {} threads)",
                            ls.name, ls.grid_blocks, ls.threads_per_block
                        ));
                    }
                    for slot in ls.op.binds() {
                        if slot >= created.len() || !created[slot] {
                            return Err(format!(
                                "step {i} launches {} binding slot {slot}, which has not \
                                 been created",
                                ls.name
                            ));
                        }
                    }
                }
                Step::Download { slot } => {
                    downloads += 1;
                    if *slot >= created.len() || !created[*slot] {
                        return Err(format!(
                            "step {i} downloads slot {slot}, which has not been created"
                        ));
                    }
                }
            }
        }
        if creations != self.buffers.len() {
            return Err(format!(
                "{} buffers declared but only {creations} created",
                self.buffers.len()
            ));
        }
        if downloads != 1 {
            return Err(format!("expected exactly one download step, found {downloads}"));
        }
        Ok(())
    }

    /// Multi-line human description: decisions, footprint, and the full
    /// step sequence. Deterministic — pinned by the golden plan
    /// snapshot suite.
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "plan: m={} n={} {} on {}",
            self.m, self.n, self.precision, self.device
        );
        // The legacy line stays byte-identical (pinned by the golden
        // snapshots); non-default host layout / cost model append.
        let _ = write!(
            s,
            "  k={} mapping={:?} fused={} layout={:?}",
            self.k, self.mapping, self.fused, self.layout
        );
        if self.host_layout != Layout::Contiguous {
            let _ = write!(s, " host={:?}", self.host_layout);
        }
        if self.config.cost != CostModel::Legacy {
            let _ = write!(s, " cost={:?}", self.config.cost);
        }
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "  buffers: {} ({} elems, {} bytes device footprint)",
            self.buffers.len(),
            self.device_elems(),
            self.device_bytes()
        );
        let _ = writeln!(
            s,
            "  kernels: {}",
            self.launches()
                .map(|ls| ls.name)
                .collect::<Vec<_>>()
                .join(" -> ")
        );
        let _ = writeln!(s, "  steps:");
        for (i, step) in self.steps.iter().enumerate() {
            let line = match step {
                Step::Convert { to } => format!("convert -> {to:?}"),
                Step::Upload { slot, source } => format!(
                    "upload {} -> buf[{slot}] {} ({} elems)",
                    source.label(),
                    self.buffers[*slot].name,
                    self.buffers[*slot].elems
                ),
                Step::Alloc { slot } => format!(
                    "alloc buf[{slot}] {} ({} elems)",
                    self.buffers[*slot].name, self.buffers[*slot].elems
                ),
                Step::Launch(ls) => {
                    let detail = match &ls.op {
                        KernelOp::PThomas { map, .. } => format!("map={map:?}"),
                        KernelOp::TiledPcr { k, sub_tile, .. } => {
                            format!("k={k} sub_tile={sub_tile}")
                        }
                        KernelOp::Fused { k, sub_tile, .. } => {
                            format!("k={k} sub_tile={sub_tile}")
                        }
                    };
                    format!(
                        "launch {} grid={} threads={} regs={} binds={:?} {detail}",
                        ls.name,
                        ls.grid_blocks,
                        ls.threads_per_block,
                        ls.regs_per_thread,
                        ls.op.binds()
                    )
                }
                Step::Download { slot } => {
                    format!("download buf[{slot}] {}", self.buffers[*slot].name)
                }
                Step::ConvertBack { from } => format!("convert-back <- {from:?}"),
            };
            let _ = writeln!(s, "    {:>2}. {line}", i + 1);
        }
        s
    }

    /// Serialize the plan as a JSON object (schema
    /// `tridiag.solve_plan/v2`); [`validate_plan_json`] checks the
    /// shape.
    pub fn to_json(&self) -> Json {
        let buffers = self
            .buffers
            .iter()
            .map(|b| {
                Json::Obj(vec![
                    ("name".into(), Json::str(b.name)),
                    ("elems".into(), Json::num(b.elems as f64)),
                ])
            })
            .collect();
        let steps = self
            .steps
            .iter()
            .map(|step| match step {
                Step::Convert { to } => Json::Obj(vec![
                    ("op".into(), Json::str("convert")),
                    ("layout".into(), Json::str(format!("{to:?}"))),
                ]),
                Step::Upload { slot, source } => Json::Obj(vec![
                    ("op".into(), Json::str("upload")),
                    ("source".into(), Json::str(source.label())),
                    ("slot".into(), Json::num(*slot as f64)),
                ]),
                Step::Alloc { slot } => Json::Obj(vec![
                    ("op".into(), Json::str("alloc")),
                    ("slot".into(), Json::num(*slot as f64)),
                ]),
                Step::Launch(ls) => Json::Obj(vec![
                    ("op".into(), Json::str("launch")),
                    ("kernel".into(), Json::str(ls.name)),
                    ("grid_blocks".into(), Json::num(ls.grid_blocks as f64)),
                    (
                        "threads_per_block".into(),
                        Json::num(ls.threads_per_block as f64),
                    ),
                    ("regs_per_thread".into(), Json::num(ls.regs_per_thread as f64)),
                    (
                        "binds".into(),
                        Json::Arr(
                            ls.op
                                .binds()
                                .into_iter()
                                .map(|s| Json::num(s as f64))
                                .collect(),
                        ),
                    ),
                ]),
                Step::Download { slot } => Json::Obj(vec![
                    ("op".into(), Json::str("download")),
                    ("slot".into(), Json::num(*slot as f64)),
                ]),
                Step::ConvertBack { from } => Json::Obj(vec![
                    ("op".into(), Json::str("convert_back")),
                    ("layout".into(), Json::str(format!("{from:?}"))),
                ]),
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::str(PLAN_SCHEMA)),
            ("device".into(), Json::str(self.device)),
            ("precision".into(), Json::str(self.precision)),
            ("m".into(), Json::num(self.m as f64)),
            ("n".into(), Json::num(self.n as f64)),
            ("elem_bytes".into(), Json::num(self.elem_bytes as f64)),
            ("k".into(), Json::num(self.k)),
            ("mapping".into(), Json::str(format!("{:?}", self.mapping))),
            ("fused".into(), Json::Bool(self.fused)),
            ("layout".into(), Json::str(format!("{:?}", self.layout))),
            (
                "host_layout".into(),
                Json::str(format!("{:?}", self.host_layout)),
            ),
            (
                "cost_model".into(),
                Json::str(format!("{:?}", self.config.cost)),
            ),
            ("device_elems".into(), Json::num(self.device_elems() as f64)),
            ("device_bytes".into(), Json::num(self.device_bytes() as f64)),
            ("buffers".into(), Json::Arr(buffers)),
            ("steps".into(), Json::Arr(steps)),
        ])
    }
}

/// Schema identifier emitted by [`SolvePlan::to_json`]. `v2` added
/// the `host_layout` and `cost_model` dimensions; `v1` documents are
/// rejected outright (the schema string is matched exactly).
pub const PLAN_SCHEMA: &str = "tridiag.solve_plan/v2";

/// Cost-model names accepted by the plan validators (the `Debug`
/// renderings of [`CostModel`]).
const COST_MODELS: &[&str] = &["Legacy", "Transactions"];

/// Validate a parsed plan document against the
/// `tridiag.solve_plan/v2` schema. Returns every problem found (empty
/// = valid). Used by the CLI `plan` smoke to catch schema drift.
pub fn validate_plan_json(doc: &Json) -> Vec<String> {
    const LAYOUTS: &[&str] = &["Contiguous", "Interleaved"];
    let mut c = Check::new(doc);
    c.schema(PLAN_SCHEMA);
    c.req_strs(&["device", "precision", "mapping"]);
    c.str_enum("layout", LAYOUTS);
    c.str_enum("host_layout", LAYOUTS);
    c.str_enum("cost_model", COST_MODELS);
    c.req_uints(&["m", "n", "elem_bytes", "k", "device_elems", "device_bytes"]);
    c.req_bool("fused");
    let bufs = c.req_arr("buffers");
    for (i, b) in bufs.iter().enumerate() {
        let mut bc = c.child(b, format!("buffers[{i}] "));
        bc.req_str("name");
        bc.req_pos_int("elems");
        c.absorb(bc);
    }
    let num_buffers = bufs.len();
    let slot_ok = |v: Option<f64>| {
        matches!(v, Some(s) if s >= 0.0 && s.fract() == 0.0 && (s as usize) < num_buffers)
    };
    let steps = c.req_arr("steps");
    let mut downloads = 0usize;
    let mut launches = 0usize;
    for (i, step) in steps.iter().enumerate() {
        let mut sc = c.child(step, format!("steps[{i}] "));
        match step.get("op").and_then(Json::as_str) {
            Some("convert") | Some("convert_back") => {
                sc.str_enum("layout", LAYOUTS);
            }
            Some("upload") => {
                sc.ensure(
                    slot_ok(step.get("slot").and_then(Json::as_num)),
                    "upload slot out of range",
                );
                match step.get("source").and_then(Json::as_str) {
                    Some("a") | Some("b") | Some("c") | Some("d") => {}
                    Some(other) => sc.problem(format!(
                        "has unknown upload source {other:?} \
                         (expected one of \"a\", \"b\", \"c\", \"d\")"
                    )),
                    None => sc.problem("missing string field \"source\""),
                }
            }
            Some("alloc") => {
                sc.ensure(
                    slot_ok(step.get("slot").and_then(Json::as_num)),
                    "alloc slot out of range",
                );
            }
            Some("launch") => {
                launches += 1;
                sc.req_str("kernel");
                sc.req_pos_int("grid_blocks");
                sc.req_pos_int("threads_per_block");
                sc.req_pos_int("regs_per_thread");
                for (j, b) in sc.req_arr("binds").iter().enumerate() {
                    if !slot_ok(b.as_num()) {
                        sc.problem(format!("binds[{j}] slot out of range"));
                    }
                }
            }
            Some("download") => {
                downloads += 1;
                sc.ensure(
                    slot_ok(step.get("slot").and_then(Json::as_num)),
                    "download slot out of range",
                );
            }
            Some(other) => sc.problem(format!("has unknown op {other:?}")),
            None => sc.problem("missing string field \"op\""),
        }
        c.absorb(sc);
    }
    if !steps.is_empty() || doc.get("steps").is_some() {
        c.ensure(
            downloads == 1,
            format!("expected exactly one download step, found {downloads}"),
        );
        c.ensure(launches > 0, "plan schedules no kernel launches");
    }
    c.finish()
}

// ---------------------------------------------------------------------
// Multi-device sharding
// ---------------------------------------------------------------------

/// Contiguous, balanced partition of `m` systems across `d` devices:
/// shard `i` gets `m / d` systems plus one of the first `m % d`
/// remainders, so shard sizes differ by at most 1 and every system
/// index lands in exactly one shard, in order. Returns `(sys_start,
/// sys_count)` per shard.
///
/// Fails with [`SimError::InvalidPlan`] when `d == 0`, `m == 0`, or
/// `m < d` (a device would receive an empty shard).
pub fn partition_systems(m: usize, d: usize) -> Result<Vec<(usize, usize)>> {
    if d == 0 {
        return Err(SimError::InvalidPlan("device group is empty".into()));
    }
    if m == 0 {
        return Err(SimError::InvalidPlan(
            "cannot shard an empty batch (m = 0)".into(),
        ));
    }
    if m < d {
        return Err(SimError::InvalidPlan(format!(
            "cannot shard {m} system(s) across {d} devices: a device would idle"
        )));
    }
    let base = m / d;
    let rem = m % d;
    let mut shards = Vec::with_capacity(d);
    let mut start = 0usize;
    for i in 0..d {
        let count = base + usize::from(i < rem);
        shards.push((start, count));
        start += count;
    }
    debug_assert_eq!(start, m);
    Ok(shards)
}

/// One device's share of a sharded solve: which systems it owns and the
/// [`SolvePlan`] (built against *its* spec) that solves them.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// Index into the [`DeviceGroup`] this shard runs on.
    pub device_index: usize,
    /// First system (in the caller's batch) this shard owns.
    pub sys_start: usize,
    /// Number of systems this shard owns.
    pub sys_count: usize,
    /// The per-device plan for the shard's sub-batch.
    pub plan: SolvePlan,
}

/// A solve sharded across a [`DeviceGroup`]: a reference single-device
/// plan for the full batch (built on the primary device — the source of
/// the global pipeline decisions) plus one [`ShardPlan`] per device.
///
/// Bit-identity with the single-device path requires every shard to run
/// the *same* pipeline on its systems, so the reference plan's decisions
/// (`k`, resolved mapping, fusion) are pinned into each shard's config;
/// [`SolvePlan::build`] then re-applies the shard device's own clamps
/// (shared-memory capacity, max block size), which on a heterogeneous
/// group may lower `k` for that shard — a documented deviation
/// (bit-identity is guaranteed for homogeneous groups).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedPlan {
    /// Number of systems in the full batch.
    pub m: usize,
    /// Rows per system.
    pub n: usize,
    /// Scalar width in bytes (4 or 8).
    pub elem_bytes: usize,
    /// Precision label (`"f32"` / `"f64"`).
    pub precision: &'static str,
    /// Single-device plan for the full batch on the primary device —
    /// the source of the pinned global decisions and the merged
    /// report's `plan`.
    pub reference: SolvePlan,
    /// Per-device shard plans, in device order.
    pub shards: Vec<ShardPlan>,
}

impl ShardedPlan {
    /// Plan a solve of `m` systems of `n` rows sharded across `group`.
    /// Pure, like [`SolvePlan::build`]. A single-device group yields
    /// the identity: one shard whose plan *is* the reference plan.
    ///
    /// Fails with [`SimError::InvalidPlan`] on an empty geometry, an
    /// unsupported scalar width, `m <` device count, or any per-device
    /// plan failure (e.g. a shard footprint beyond its device's global
    /// memory).
    pub fn build(
        group: &DeviceGroup,
        config: &GpuSolverConfig,
        m: usize,
        n: usize,
        elem_bytes: usize,
    ) -> Result<ShardedPlan> {
        let reference = SolvePlan::build(group.primary(), config, m, n, elem_bytes)?;
        if group.len() == 1 {
            let shards = vec![ShardPlan {
                device_index: 0,
                sys_start: 0,
                sys_count: m,
                plan: reference.clone(),
            }];
            return Ok(ShardedPlan {
                m,
                n,
                elem_bytes,
                precision: reference.precision,
                reference,
                shards,
            });
        }
        let ranges = partition_systems(m, group.len())?;
        // Pin the reference's global decisions so every shard runs the
        // same pipeline on its systems (per-device clamps still apply
        // inside SolvePlan::build).
        let pinned = GpuSolverConfig {
            policy: TransitionPolicy::Fixed(reference.k),
            mapping: reference.mapping,
            fused: reference.fused,
            // Layout is pinned too (the cost model may choose
            // differently at the shard's smaller m), and the cost
            // model switched to Legacy so the pinned decisions replay
            // verbatim instead of being re-scored.
            cost: CostModel::Legacy,
            layout: LayoutChoice::pin(reference.layout),
            ..*config
        };
        let shards = ranges
            .into_iter()
            .enumerate()
            .map(|(device_index, (sys_start, sys_count))| {
                SolvePlan::build(
                    &group.devices()[device_index],
                    &pinned,
                    sys_count,
                    n,
                    elem_bytes,
                )
                .map(|plan| ShardPlan {
                    device_index,
                    sys_start,
                    sys_count,
                    plan,
                })
                .map_err(|e| match e {
                    SimError::InvalidPlan(msg) => SimError::InvalidPlan(format!(
                        "shard {device_index} (systems [{sys_start}, {})): {msg}",
                        sys_start + sys_count
                    )),
                    other => other,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedPlan {
            m,
            n,
            elem_bytes,
            precision: reference.precision,
            reference,
            shards,
        })
    }

    /// Number of devices (= shards).
    pub fn num_devices(&self) -> usize {
        self.shards.len()
    }

    /// Total device bytes summed over every shard's buffer table.
    pub fn device_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.plan.device_bytes()).sum()
    }

    /// Multi-line human description: the partition, the pinned global
    /// decisions, and each shard's device/geometry/footprint.
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "sharded plan: m={} n={} {} across {} device(s)",
            self.m,
            self.n,
            self.precision,
            self.shards.len()
        );
        let _ = writeln!(
            s,
            "  reference: k={} mapping={:?} fused={} (decided on {} for the full batch)",
            self.reference.k, self.reference.mapping, self.reference.fused, self.reference.device
        );
        for sh in &self.shards {
            let _ = writeln!(
                s,
                "  shard {}: {} systems [{}, {}) k={} kernels={} device_bytes={}",
                sh.device_index,
                sh.plan.device,
                sh.sys_start,
                sh.sys_start + sh.sys_count,
                sh.plan.k,
                sh.plan
                    .launches()
                    .map(|l| l.name)
                    .collect::<Vec<_>>()
                    .join(" -> "),
                sh.plan.device_bytes()
            );
        }
        s
    }

    /// Serialize as a JSON object (schema `tridiag.sharded_plan/v2`);
    /// [`validate_sharded_plan_json`] checks the shape.
    pub fn to_json(&self) -> Json {
        let shards = self
            .shards
            .iter()
            .map(|sh| {
                Json::Obj(vec![
                    ("device".into(), Json::str(sh.plan.device)),
                    ("device_index".into(), Json::num(sh.device_index as f64)),
                    ("sys_start".into(), Json::num(sh.sys_start as f64)),
                    ("sys_count".into(), Json::num(sh.sys_count as f64)),
                    ("k".into(), Json::num(sh.plan.k)),
                    ("plan".into(), sh.plan.to_json()),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::str(SHARDED_PLAN_SCHEMA)),
            ("m".into(), Json::num(self.m as f64)),
            ("n".into(), Json::num(self.n as f64)),
            ("elem_bytes".into(), Json::num(self.elem_bytes as f64)),
            ("precision".into(), Json::str(self.precision)),
            ("devices".into(), Json::num(self.shards.len() as f64)),
            ("k".into(), Json::num(self.reference.k)),
            (
                "mapping".into(),
                Json::str(format!("{:?}", self.reference.mapping)),
            ),
            ("fused".into(), Json::Bool(self.reference.fused)),
            (
                "layout".into(),
                Json::str(format!("{:?}", self.reference.layout)),
            ),
            (
                "cost_model".into(),
                Json::str(format!("{:?}", self.reference.config.cost)),
            ),
            ("device_bytes".into(), Json::num(self.device_bytes() as f64)),
            ("reference".into(), self.reference.to_json()),
            ("shards".into(), Json::Arr(shards)),
        ])
    }
}

/// Schema identifier emitted by [`ShardedPlan::to_json`]. `v2` added
/// the pinned `layout` and `cost_model` dimensions; `v1` documents
/// are rejected outright.
pub const SHARDED_PLAN_SCHEMA: &str = "tridiag.sharded_plan/v2";

/// Validate a parsed sharded-plan document against the
/// `tridiag.sharded_plan/v2` schema: field shapes, the embedded
/// reference and per-shard plans (via [`validate_plan_json`]), and the
/// partition invariants (contiguous full coverage, balance within 1).
/// Returns every problem found (empty = valid).
pub fn validate_sharded_plan_json(doc: &Json) -> Vec<String> {
    let mut c = Check::new(doc);
    c.schema(SHARDED_PLAN_SCHEMA);
    c.req_strs(&["precision", "mapping"]);
    c.str_enum("layout", &["Contiguous", "Interleaved"]);
    c.str_enum("cost_model", COST_MODELS);
    c.req_uints(&["m", "n", "elem_bytes", "devices", "k", "device_bytes"]);
    c.req_bool("fused");
    if let Some(reference) = c.req_obj("reference") {
        c.absorb_with("reference: ", validate_plan_json(reference));
    }
    let m = doc.get("m").and_then(Json::as_num).unwrap_or(0.0) as usize;
    let declared = doc.get("devices").and_then(Json::as_num).unwrap_or(0.0) as usize;
    match doc.get("shards").and_then(Json::as_arr) {
        Some(shards) if !shards.is_empty() => {
            c.ensure(
                shards.len() == declared,
                format!(
                    "\"devices\" is {declared} but {} shards are listed",
                    shards.len()
                ),
            );
            let mut cursor = 0usize;
            let mut min_count = usize::MAX;
            let mut max_count = 0usize;
            for (i, sh) in shards.iter().enumerate() {
                let mut shc = c.child(sh, format!("shards[{i}] "));
                shc.req_str("device");
                let num = |key: &str| sh.get(key).and_then(Json::as_num);
                match (num("device_index"), num("sys_start"), num("sys_count")) {
                    (Some(di), Some(start), Some(count))
                        if di.fract() == 0.0 && start.fract() == 0.0 && count.fract() == 0.0 =>
                    {
                        shc.ensure(di as usize == i, format!("has device_index {di}"));
                        shc.ensure(
                            start as usize == cursor,
                            format!(
                                "starts at {start}, expected {cursor} \
                                 (shards must tile the batch contiguously)"
                            ),
                        );
                        shc.ensure(count >= 1.0, "owns no systems");
                        cursor = start as usize + count as usize;
                        min_count = min_count.min(count as usize);
                        max_count = max_count.max(count as usize);
                    }
                    _ => shc.problem("missing integer device_index/sys_start/sys_count"),
                }
                match sh.get("plan") {
                    Some(plan) => {
                        shc.absorb_with("plan: ", validate_plan_json(plan));
                        // The embedded plan must solve exactly the
                        // systems the shard owns, on the same geometry.
                        let plan_num = |key: &str| plan.get(key).and_then(Json::as_num);
                        if let (Some(pm), Some(count)) =
                            (plan_num("m"), sh.get("sys_count").and_then(Json::as_num))
                        {
                            shc.ensure(
                                pm == count,
                                format!(
                                    "plan solves m = {pm} but the shard owns \
                                     {count} system(s)"
                                ),
                            );
                        }
                        for key in ["n", "elem_bytes"] {
                            if let (Some(pv), Some(tv)) =
                                (plan_num(key), doc.get(key).and_then(Json::as_num))
                            {
                                shc.ensure(
                                    pv == tv,
                                    format!(
                                        "plan has {key} = {pv} but the batch \
                                         has {key} = {tv}"
                                    ),
                                );
                            }
                        }
                    }
                    None => shc.problem("missing object field \"plan\""),
                }
                c.absorb(shc);
            }
            c.ensure(
                cursor == m,
                format!("shards cover [0, {cursor}) but the batch has m = {m} systems"),
            );
            c.ensure(
                max_count == 0 || max_count - min_count <= 1,
                format!(
                    "shard sizes unbalanced: min {min_count}, max {max_count} (allowed skew 1)"
                ),
            );
        }
        Some(_) => c.problem("\"shards\" is empty"),
        None => c.problem("missing array field \"shards\""),
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gtx480_plan(m: usize, n: usize, bytes: usize) -> SolvePlan {
        SolvePlan::build(
            &DeviceSpec::gtx480(),
            &GpuSolverConfig::default(),
            m,
            n,
            bytes,
        )
        .unwrap()
    }

    #[test]
    fn k0_plan_is_single_kernel_seven_buffers() {
        let plan = gtx480_plan(2048, 128, 8);
        assert_eq!(plan.k, 0);
        assert_eq!(plan.layout, Layout::Interleaved);
        assert_eq!(plan.buffers.len(), 7);
        assert_eq!(plan.launches().count(), 1);
        assert_eq!(plan.device_elems(), 7 * 2048 * 128);
        plan.validate().unwrap();
    }

    #[test]
    fn split_plan_is_two_kernels_eleven_buffers() {
        let plan = gtx480_plan(64, 512, 8);
        assert!(plan.k > 0);
        assert!(!plan.fused);
        assert_eq!(plan.buffers.len(), 11);
        let names: Vec<_> = plan.launches().map(|l| l.name).collect();
        assert_eq!(names, ["tiled_pcr", "p_thomas"]);
        assert_eq!(plan.device_elems(), 11 * 64 * 512);
        plan.validate().unwrap();
    }

    #[test]
    fn fused_plan_is_one_kernel_seven_buffers() {
        let plan = SolvePlan::build(
            &DeviceSpec::gtx480(),
            &GpuSolverConfig {
                fused: true,
                mapping: MappingVariant::BlockPerSystem,
                ..Default::default()
            },
            64,
            512,
            8,
        )
        .unwrap();
        assert!(plan.fused);
        assert_eq!(plan.buffers.len(), 7);
        let names: Vec<_> = plan.launches().map(|l| l.name).collect();
        assert_eq!(names, ["fused_pcr_thomas"]);
        plan.validate().unwrap();
    }

    #[test]
    fn empty_geometry_is_a_typed_error() {
        for (m, n) in [(0usize, 64usize), (64, 0), (0, 0)] {
            let err = SolvePlan::build(
                &DeviceSpec::gtx480(),
                &GpuSolverConfig::default(),
                m,
                n,
                8,
            )
            .unwrap_err();
            assert!(
                matches!(err, SimError::InvalidPlan(_)),
                "m={m} n={n}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_scalar_width_is_a_typed_error() {
        let err =
            SolvePlan::build(&DeviceSpec::gtx480(), &GpuSolverConfig::default(), 4, 64, 2)
                .unwrap_err();
        assert!(matches!(err, SimError::InvalidPlan(_)), "{err:?}");
    }

    #[test]
    fn oversized_batch_is_a_typed_oom_error() {
        // 11 buffers x m x n x 8 bytes must exceed 1.5 GiB.
        let err = SolvePlan::build(
            &DeviceSpec::gtx480(),
            &GpuSolverConfig::default(),
            64,
            1 << 20,
            8,
        )
        .unwrap_err();
        match err {
            SimError::InvalidPlan(msg) => {
                assert!(msg.contains("global memory"), "{msg}");
                // Batched OOM has no distributed escape hatch: splitting
                // rows only helps a *single* system.
                assert!(!msg.contains("--split-n"), "{msg}");
            }
            other => panic!("expected InvalidPlan, got {other:?}"),
        }
    }

    #[test]
    fn oversized_single_system_names_the_distributed_option() {
        // One system whose footprint exceeds one device is exactly the
        // distributed path's job — the error must say so.
        let err = SolvePlan::build(
            &DeviceSpec::gtx480(),
            &GpuSolverConfig::default(),
            1,
            1 << 26,
            8,
        )
        .unwrap_err();
        match err {
            SimError::InvalidPlan(msg) => {
                assert!(msg.contains("global memory"), "{msg}");
                assert!(
                    msg.contains("split across devices with a distributed plan")
                        && msg.contains("solve --split-n"),
                    "the OOM error must name the distributed option: {msg}"
                );
            }
            other => panic!("expected InvalidPlan, got {other:?}"),
        }
    }

    #[test]
    fn validate_catches_malformed_plans() {
        let mut plan = gtx480_plan(16, 128, 8);
        // Bind a slot past the table.
        if let Some(Step::Launch(ls)) = plan
            .steps
            .iter_mut()
            .find(|s| matches!(s, Step::Launch(_)))
        {
            if let KernelOp::TiledPcr { input, .. } = &mut ls.op {
                input[0] = 99;
            }
        }
        assert!(plan.validate().is_err());

        let mut plan = gtx480_plan(16, 128, 8);
        plan.steps.retain(|s| !matches!(s, Step::Download { .. }));
        assert!(plan.validate().is_err());
    }

    #[test]
    fn plan_json_round_trips_and_validates() {
        for (m, n, bytes) in [(2048usize, 128usize, 8usize), (64, 512, 8), (16, 1024, 4)] {
            let plan = gtx480_plan(m, n, bytes);
            let text = plan.to_json().to_string();
            let doc = gpu_sim::json::parse(&text).unwrap();
            let problems = validate_plan_json(&doc);
            assert!(problems.is_empty(), "m={m} n={n}: {problems:?}");
        }
    }

    #[test]
    fn json_validator_rejects_drift() {
        let plan = gtx480_plan(64, 512, 8);
        let mut doc = plan.to_json();
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "steps");
        }
        assert!(!validate_plan_json(&doc).is_empty());

        let mut doc = plan.to_json();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "schema" {
                    *v = Json::str("tridiag.solve_plan/v999");
                }
            }
        }
        assert!(!validate_plan_json(&doc).is_empty());
    }

    #[test]
    fn json_validator_rejects_v1_documents() {
        // v1 documents (no host_layout/cost_model, old schema string)
        // must fail strictly, not be absorbed.
        let plan = gtx480_plan(64, 512, 8);
        let mut doc = plan.to_json();
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "host_layout" && k != "cost_model");
            for (k, v) in fields.iter_mut() {
                if k == "schema" {
                    *v = Json::str("tridiag.solve_plan/v1");
                }
            }
        }
        let problems = validate_plan_json(&doc);
        assert!(
            problems.iter().any(|p| p.contains("schema")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("host_layout")),
            "{problems:?}"
        );

        let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), 2).unwrap();
        let sp = ShardedPlan::build(&group, &GpuSolverConfig::default(), 64, 512, 8).unwrap();
        let mut doc = sp.to_json();
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "layout" && k != "cost_model");
            for (k, v) in fields.iter_mut() {
                if k == "schema" {
                    *v = Json::str("tridiag.sharded_plan/v1");
                }
            }
        }
        assert!(!validate_sharded_plan_json(&doc).is_empty());
    }

    #[test]
    fn json_validator_rejects_out_of_enum_cost_model() {
        let plan = gtx480_plan(64, 512, 8);
        let mut doc = plan.to_json();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "cost_model" {
                    *v = Json::str("Vibes");
                }
            }
        }
        let problems = validate_plan_json(&doc);
        assert!(
            problems.iter().any(|p| p.contains("cost_model")),
            "{problems:?}"
        );
    }

    #[test]
    fn matching_host_layout_elides_conversions() {
        // k = 0 geometry: device layout is interleaved, so an
        // interleaved host batch uploads as-is.
        let plan = SolvePlan::build_for_host(
            &DeviceSpec::gtx480(),
            &GpuSolverConfig::default(),
            Layout::Interleaved,
            2048,
            128,
            8,
        )
        .unwrap();
        assert_eq!(plan.layout, Layout::Interleaved);
        assert_eq!(plan.host_layout, Layout::Interleaved);
        assert!(plan
            .steps
            .iter()
            .all(|s| !matches!(s, Step::Convert { .. } | Step::ConvertBack { .. })));
        plan.validate().unwrap();

        // k > 0 geometry: device layout is contiguous, so the same
        // host layout keeps its conversions.
        let plan = SolvePlan::build_for_host(
            &DeviceSpec::gtx480(),
            &GpuSolverConfig::default(),
            Layout::Interleaved,
            64,
            512,
            8,
        )
        .unwrap();
        assert_eq!(plan.layout, Layout::Contiguous);
        assert!(plan.steps.iter().any(|s| matches!(s, Step::Convert { .. })));
        assert!(plan
            .steps
            .iter()
            .any(|s| matches!(s, Step::ConvertBack { .. })));
    }

    #[test]
    fn contiguous_host_plans_keep_their_legacy_shape() {
        // The hybrid pipeline's (no-op) contiguous Convert steps stay:
        // legacy plan shapes are pinned by the golden snapshots.
        let plan = gtx480_plan(64, 512, 8);
        assert_eq!(plan.layout, Layout::Contiguous);
        assert_eq!(plan.host_layout, Layout::Contiguous);
        assert!(plan.steps.iter().any(|s| matches!(s, Step::Convert { .. })));
        assert!(plan
            .steps
            .iter()
            .any(|s| matches!(s, Step::ConvertBack { .. })));
    }

    #[test]
    fn forced_interleaved_builds_the_pure_pthomas_plan() {
        let plan = SolvePlan::build(
            &DeviceSpec::gtx480(),
            &GpuSolverConfig {
                layout: LayoutChoice::Interleaved,
                ..Default::default()
            },
            64,
            512,
            8,
        )
        .unwrap();
        assert_eq!(plan.k, 0);
        assert_eq!(plan.layout, Layout::Interleaved);
        let names: Vec<_> = plan.launches().map(|l| l.name).collect();
        assert_eq!(names, ["p_thomas"]);
        plan.validate().unwrap();
    }

    #[test]
    fn forced_contiguous_k0_uses_the_strawman_addressing() {
        let plan = SolvePlan::build(
            &DeviceSpec::gtx480(),
            &GpuSolverConfig {
                layout: LayoutChoice::Contiguous,
                ..Default::default()
            },
            2048,
            128,
            8,
        )
        .unwrap();
        assert_eq!(plan.k, 0);
        assert_eq!(plan.layout, Layout::Contiguous);
        let maps: Vec<_> = plan
            .launches()
            .filter_map(|l| match &l.op {
                KernelOp::PThomas { map, .. } => Some(*map),
                _ => None,
            })
            .collect();
        assert_eq!(maps, [AddrMap::Contiguous { m: 2048, n: 128 }]);
        // Contiguous-host plans keep the (no-op) conversion steps.
        assert!(plan.steps.iter().any(|s| matches!(s, Step::Convert { .. })));
    }

    #[test]
    fn sharded_plan_pins_reference_layout() {
        // Under the transaction model the full batch at m = 1024 picks
        // interleaved p-Thomas; a 4-way shard (m = 256) on its own
        // would pick the hybrid — pinning must keep every shard on the
        // reference layout.
        let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), 4).unwrap();
        let cfg = GpuSolverConfig {
            cost: CostModel::Transactions,
            ..Default::default()
        };
        let sp = ShardedPlan::build(&group, &cfg, 1024, 512, 8).unwrap();
        assert_eq!(sp.reference.layout, Layout::Interleaved);
        let solo = SolvePlan::build(&DeviceSpec::gtx480(), &cfg, 256, 512, 8).unwrap();
        assert_ne!(solo.layout, sp.reference.layout);
        for sh in &sp.shards {
            assert_eq!(sh.plan.layout, sp.reference.layout);
            assert_eq!(sh.plan.k, sp.reference.k);
        }
    }

    #[test]
    fn json_validator_rejects_bad_layout_and_source() {
        let plan = gtx480_plan(64, 512, 8);
        // Unknown device layout string.
        let mut doc = plan.to_json();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "layout" {
                    *v = Json::str("ColumnMajor");
                }
            }
        }
        let problems = validate_plan_json(&doc);
        assert!(
            problems.iter().any(|p| p.contains("layout")),
            "{problems:?}"
        );

        // Unknown upload source letter.
        let mut doc = plan.to_json();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "steps" {
                    if let Json::Arr(steps) = v {
                        for step in steps.iter_mut() {
                            if step.get("op").and_then(Json::as_str) == Some("upload") {
                                if let Json::Obj(sf) = step {
                                    for (sk, sv) in sf.iter_mut() {
                                        if sk == "source" {
                                            *sv = Json::str("e");
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let problems = validate_plan_json(&doc);
        assert!(
            problems.iter().any(|p| p.contains("upload source")),
            "{problems:?}"
        );
    }

    #[test]
    fn json_validator_rejects_out_of_range_slot_and_unknown_op() {
        let plan = gtx480_plan(64, 512, 8);
        // Download slot past the buffer table.
        let mut doc = plan.to_json();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "steps" {
                    if let Json::Arr(steps) = v {
                        for step in steps.iter_mut() {
                            if step.get("op").and_then(Json::as_str) == Some("download") {
                                if let Json::Obj(sf) = step {
                                    for (sk, sv) in sf.iter_mut() {
                                        if sk == "slot" {
                                            *sv = Json::num(99.0);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let problems = validate_plan_json(&doc);
        assert!(
            problems.iter().any(|p| p.contains("slot out of range")),
            "{problems:?}"
        );

        // Unknown step kind.
        let mut doc = plan.to_json();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "steps" {
                    if let Json::Arr(steps) = v {
                        if let Json::Obj(sf) = &mut steps[0] {
                            for (sk, sv) in sf.iter_mut() {
                                if sk == "op" {
                                    *sv = Json::str("teleport");
                                }
                            }
                        }
                    }
                }
            }
        }
        let problems = validate_plan_json(&doc);
        assert!(
            problems.iter().any(|p| p.contains("unknown op")),
            "{problems:?}"
        );
    }

    #[test]
    fn sharded_json_validator_rejects_shard_geometry_drift() {
        let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), 2).unwrap();
        let sp = ShardedPlan::build(&group, &GpuSolverConfig::default(), 64, 512, 8).unwrap();
        // A shard whose embedded plan solves more systems than it owns.
        let mut doc = sp.to_json();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "shards" {
                    if let Json::Arr(shards) = v {
                        if let Json::Obj(sh) = &mut shards[0] {
                            for (sk, sv) in sh.iter_mut() {
                                if sk == "plan" {
                                    if let Json::Obj(pf) = sv {
                                        for (pk, pv) in pf.iter_mut() {
                                            if pk == "m" {
                                                *pv = Json::num(64.0);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let problems = validate_sharded_plan_json(&doc);
        assert!(
            problems.iter().any(|p| p.contains("but the shard owns")),
            "{problems:?}"
        );
    }

    #[test]
    fn partition_covers_balanced_contiguously() {
        for (m, d) in [(10usize, 3usize), (8, 4), (7, 2), (5, 5), (64, 4)] {
            let shards = partition_systems(m, d).unwrap();
            assert_eq!(shards.len(), d);
            let mut cursor = 0;
            for &(start, count) in &shards {
                assert_eq!(start, cursor, "m={m} d={d}");
                assert!(count >= 1);
                cursor += count;
            }
            assert_eq!(cursor, m, "m={m} d={d}");
            let min = shards.iter().map(|s| s.1).min().unwrap();
            let max = shards.iter().map(|s| s.1).max().unwrap();
            assert!(max - min <= 1, "m={m} d={d}: skew {min}..{max}");
        }
    }

    #[test]
    fn partition_degenerate_cases_are_typed_errors() {
        for (m, d) in [(0usize, 2usize), (4, 0), (3, 4), (0, 0)] {
            let err = partition_systems(m, d).unwrap_err();
            assert!(matches!(err, SimError::InvalidPlan(_)), "m={m} d={d}");
        }
        assert_eq!(partition_systems(5, 1).unwrap(), vec![(0, 5)]);
    }

    #[test]
    fn single_device_sharded_plan_is_the_identity() {
        let group = DeviceGroup::single(DeviceSpec::gtx480());
        let sp = ShardedPlan::build(&group, &GpuSolverConfig::default(), 64, 512, 8).unwrap();
        assert_eq!(sp.shards.len(), 1);
        assert_eq!(sp.shards[0].plan, sp.reference);
        assert_eq!(sp.shards[0].sys_count, 64);
    }

    #[test]
    fn sharded_plan_pins_reference_decisions() {
        let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), 4).unwrap();
        let sp = ShardedPlan::build(&group, &GpuSolverConfig::default(), 64, 512, 8).unwrap();
        // Unsharded m=16 would choose a different pipeline (k=7,
        // BlockGroupPerSystem); pinning keeps every shard on the
        // reference decision so outputs stay bit-identical.
        let solo = gtx480_plan(16, 512, 8);
        assert_ne!((solo.k, solo.mapping), (sp.reference.k, sp.reference.mapping));
        for sh in &sp.shards {
            assert_eq!(sh.plan.k, sp.reference.k);
            assert_eq!(sh.plan.mapping, sp.reference.mapping);
            assert_eq!(sh.plan.fused, sp.reference.fused);
            assert_eq!(sh.sys_count, 16);
        }
    }

    #[test]
    fn heterogeneous_shard_reclamps_k_to_its_device() {
        // GTX280 has 16 KiB shared per block vs the GTX480's 48 KiB, so
        // the pinned reference k must clamp down on that shard.
        let group =
            DeviceGroup::from_specs(vec![DeviceSpec::gtx480(), DeviceSpec::gtx280()]).unwrap();
        let sp = ShardedPlan::build(&group, &GpuSolverConfig::default(), 16, 1024, 8).unwrap();
        assert_eq!(sp.shards[0].plan.k, sp.reference.k);
        assert!(
            sp.shards[1].plan.k <= sp.reference.k,
            "gtx280 shard k {} exceeds reference {}",
            sp.shards[1].plan.k,
            sp.reference.k
        );
    }

    #[test]
    fn sharded_plan_json_round_trips_and_validates() {
        let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), 2).unwrap();
        let sp = ShardedPlan::build(&group, &GpuSolverConfig::default(), 64, 512, 8).unwrap();
        let text = sp.to_json().to_string();
        let doc = gpu_sim::json::parse(&text).unwrap();
        let problems = validate_sharded_plan_json(&doc);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn sharded_json_validator_rejects_drift() {
        let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), 2).unwrap();
        let sp = ShardedPlan::build(&group, &GpuSolverConfig::default(), 64, 512, 8).unwrap();
        let mut doc = sp.to_json();
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "shards");
        }
        assert!(!validate_sharded_plan_json(&doc).is_empty());

        // Break the partition: first shard shifted off zero.
        let mut doc = sp.to_json();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "shards" {
                    if let Json::Arr(shards) = v {
                        if let Json::Obj(sh) = &mut shards[0] {
                            for (sk, sv) in sh.iter_mut() {
                                if sk == "sys_start" {
                                    *sv = Json::num(1.0);
                                }
                            }
                        }
                    }
                }
            }
        }
        assert!(!validate_sharded_plan_json(&doc).is_empty());
    }
}
