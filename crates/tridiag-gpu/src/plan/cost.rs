//! The layout-aware plan cost model: enumerate candidate
//! `(layout, mapping, fused, k)` pipelines and price each with
//! closed-form transaction/serialization/transfer estimates.
//!
//! Before this module, global-memory layout was an implied consequence
//! of the transition rule: `k = 0` meant "convert to interleaved and
//! run p-Thomas", `k > 0` meant "stay contiguous and run the hybrid".
//! Here layout is an explicit, independently chosen dimension:
//! [`decide`] resolves every pipeline decision in one place, either by
//! replaying the legacy procedure exactly
//! ([`CostModel::Legacy`] — pinned byte-for-byte by the golden plan
//! snapshots) or by scoring every candidate tuple
//! ([`CostModel::Transactions`]) and taking the deterministic argmin.
//!
//! The memory term reuses the coalesce lint's exact closed form
//! ([`gpu_sim::lint::coalesce::coalesced_minimum`]): an interleaved
//! p-Thomas row access by `m` lanes costs exactly
//! `coalesced_minimum(m, warp, elem, segment)` transactions, the
//! contiguous strawman costs up to `m` (one segment per lane once
//! `n·elem ≥ segment`), and the hybrid's PCR stage moves the four
//! coefficient arrays twice at the coalesced minimum. The
//! serialization term charges each serial round (Thomas rows, PCR
//! levels) `max(1, P / active_threads)` — a pipeline that leaves the
//! device mostly idle pays for it. The transfer term is the PCIe-side
//! 5·m·n·e bytes (4 uploads + 1 download) in segment units; it is
//! layout-independent but keeps costs absolute.

use crate::kernels::tiled_pcr::TiledPcrKernel;
use crate::solver::{CostModel, GpuSolverConfig, LayoutChoice, MappingVariant};
use gpu_sim::lint::coalesce::coalesced_minimum;
use gpu_sim::DeviceSpec;
use tridiag_core::transition::{choose_k, max_k_for};
use tridiag_core::Layout;

/// One fully-resolved pipeline decision: the tuple `SolvePlan::build`
/// emits steps for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Device-side layout of the coefficient buffers.
    pub layout: Layout,
    /// Resolved grid mapping (never [`MappingVariant::Auto`]).
    pub mapping: MappingVariant,
    /// Whether the fused single-kernel pipeline runs.
    pub fused: bool,
    /// PCR steps (0 = pure p-Thomas).
    pub k: u32,
}

/// A candidate decision with its modeled price, in enumeration order
/// (exposed for the bench's layout table and the acceptance gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The decision being priced.
    pub decision: Decision,
    /// Exact global-memory transactions the pipeline's kernels move.
    pub transactions: u64,
    /// Serialization term: serial rounds weighted by device idleness.
    pub serialization: u64,
    /// Host↔device transfer term (segment units, layout-independent).
    pub transfer: u64,
}

impl Candidate {
    /// Total modeled cost — the argmin key.
    pub fn cost(&self) -> u64 {
        self.transactions + self.serialization + self.transfer
    }
}

/// Clamp a requested `k` to the device: shared-memory window capacity,
/// system length, and block width — exactly the legacy clamp sequence.
fn clamp_k(spec: &DeviceSpec, c: usize, elem_bytes: usize, n: usize, requested: u32) -> u32 {
    let mut k = requested
        .min(crate::plan::max_k_for_shared(spec, c, elem_bytes))
        .min(max_k_for(n));
    // 2^k threads per group must fit a block.
    while k > 0 && (1u32 << k) > spec.max_threads_per_block {
        k -= 1;
    }
    k
}

/// Resolve [`MappingVariant::Auto`]: partition lone large systems
/// across block groups so more SMs engage; otherwise one block per
/// system. An explicit multi-system mapping whose shared-memory
/// footprint does not fit falls back to block-per-system.
pub(crate) fn resolve_mapping(
    spec: &DeviceSpec,
    requested: MappingVariant,
    m: usize,
    n: usize,
    k: u32,
    st: usize,
    elem_bytes: usize,
) -> MappingVariant {
    match requested {
        MappingVariant::Auto => {
            let want_blocks = 2 * spec.num_sms as usize;
            if m < want_blocks {
                // Partition each system, but keep partitions at least
                // 4 sub-tiles long so halo overhead stays negligible.
                let g_max_useful = (n / (4 * st)).max(1);
                let g = want_blocks.div_ceil(m).min(g_max_useful);
                if g > 1 {
                    return MappingVariant::BlockGroupPerSystem(g);
                }
            }
            MappingVariant::BlockPerSystem
        }
        explicit => {
            if let MappingVariant::MultiSystemPerBlock(q) = explicit {
                // Validate the footprint fits shared memory.
                let elems = TiledPcrKernel::shared_elems_per_slot(k, st) * q;
                if elems * elem_bytes > spec.max_shared_per_block {
                    return MappingVariant::BlockPerSystem;
                }
            }
            explicit
        }
    }
}

/// The pure-p-Thomas decision at a forced layout.
fn pthomas_decision(layout: Layout) -> Decision {
    Decision {
        layout,
        mapping: MappingVariant::BlockPerSystem,
        fused: false,
        k: 0,
    }
}

/// The hybrid (k > 0) decision under `config` at step count `k`.
fn hybrid_decision(
    spec: &DeviceSpec,
    config: &GpuSolverConfig,
    m: usize,
    n: usize,
    elem_bytes: usize,
    k: u32,
) -> Decision {
    let c = config.sub_tile_scale.max(1);
    let st = c << k;
    let mapping = resolve_mapping(spec, config.mapping, m, n, k, st, elem_bytes);
    Decision {
        layout: Layout::Contiguous,
        mapping,
        fused: config.fused && matches!(mapping, MappingVariant::BlockPerSystem),
        k,
    }
}

/// p-Thomas global transactions for `m` systems of `n` rows stored in
/// `layout`: 9 accesses per row (forward: load a/b/c/d + store c'/d';
/// backward: load c'/d' + store x), each by `m` lanes.
///
/// Interleaved lanes are adjacent, so each access hits the
/// [`coalesced_minimum`] exactly — the closed form the acceptance gate
/// holds the lint's measured counts to. Contiguous lanes stride `n`
/// apart: once `n·elem ≥ segment` every lane owns a segment and each
/// access costs `m` transactions (the model charges that worst case —
/// the strawman exists to lose).
pub fn pthomas_transactions(
    spec: &DeviceSpec,
    layout: Layout,
    m: usize,
    n: usize,
    elem_bytes: usize,
) -> u64 {
    let per_access = match layout {
        Layout::Interleaved => coalesced_minimum(
            m,
            spec.warp_size as usize,
            elem_bytes,
            spec.transaction_bytes,
        ),
        Layout::Contiguous => m as u64,
    };
    9 * n as u64 * per_access
}

/// Price every candidate pipeline for the geometry under `choice`, in
/// the fixed enumeration order the argmin tie-breaks on: interleaved
/// p-Thomas, contiguous strawman p-Thomas, then the hybrid at each
/// admissible `k ≥ 1`.
pub fn candidates(
    spec: &DeviceSpec,
    config: &GpuSolverConfig,
    m: usize,
    n: usize,
    elem_bytes: usize,
    choice: LayoutChoice,
) -> Vec<Candidate> {
    let p = spec.parallelism();
    let seg = spec.transaction_bytes as u64;
    let warp = spec.warp_size as usize;
    let transfer = (5 * m * n * elem_bytes) as u64 / seg;
    // A pipeline serialized over `rounds` with `active` threads leaves
    // the rest of the device's parallelism P idle; weight each round
    // by that idleness so a fully-occupied round costs 1.
    let serialization = |rounds: u64, active: u64| rounds * (p / active.max(1)).max(1);

    let mut out = Vec::new();
    if choice != LayoutChoice::Contiguous {
        out.push(Candidate {
            decision: pthomas_decision(Layout::Interleaved),
            transactions: pthomas_transactions(spec, Layout::Interleaved, m, n, elem_bytes),
            serialization: serialization(9 * n as u64, m as u64),
            transfer,
        });
    }
    if choice != LayoutChoice::Interleaved {
        out.push(Candidate {
            decision: pthomas_decision(Layout::Contiguous),
            transactions: pthomas_transactions(spec, Layout::Contiguous, m, n, elem_bytes),
            serialization: serialization(9 * n as u64, m as u64),
            transfer,
        });
        let c = config.sub_tile_scale.max(1);
        let k_cap = clamp_k(spec, c, elem_bytes, n, u32::MAX);
        for k in 1..=k_cap {
            let decision = hybrid_decision(spec, config, m, n, elem_bytes, k);
            // PCR reads and writes the four coefficient arrays once
            // each, fully coalesced; p-Thomas then sweeps m·2^k
            // interleaved subsystems of n/2^k rows.
            let arrays = (m * n) as u64;
            let pcr_txn = 8 * (arrays * elem_bytes as u64).div_ceil(seg);
            let sub_m = m << k;
            let sub_n = (n >> k).max(1);
            let pth_txn = 9
                * sub_n as u64
                * coalesced_minimum(sub_m, warp, elem_bytes, spec.transaction_bytes);
            out.push(Candidate {
                decision,
                transactions: pcr_txn + pth_txn,
                // k PCR levels (4 coefficient updates each) plus the
                // Thomas sweep's rows.
                serialization: serialization(4 * k as u64 + 9 * sub_n as u64, sub_m as u64),
                transfer,
            });
        }
    }
    out
}

/// Resolve every pipeline decision for one solve, deterministically.
///
/// - [`CostModel::Legacy`] replays the pre-cost-model procedure: `k`
///   from the transition policy (device-clamped), layout implied by
///   `k` (interleaved iff `k = 0`).
/// - [`CostModel::Transactions`] prices every candidate via
///   [`candidates`] and takes the strict argmin (first wins on ties).
///
/// An explicit [`GpuSolverConfig::layout`] restricts the candidate
/// set under either model: `Interleaved` forces the pure coalesced
/// p-Thomas pipeline (`k = 0` — tiled PCR addresses contiguous
/// systems), `Contiguous` forces system-major buffers (under `Legacy`
/// with `k = 0` that is the uncoalesced strawman p-Thomas).
pub fn decide(
    spec: &DeviceSpec,
    config: &GpuSolverConfig,
    m: usize,
    n: usize,
    elem_bytes: usize,
) -> Decision {
    if config.layout == LayoutChoice::Interleaved {
        return pthomas_decision(Layout::Interleaved);
    }
    match config.cost {
        CostModel::Legacy => {
            let c = config.sub_tile_scale.max(1);
            let k = clamp_k(spec, c, elem_bytes, n, choose_k(config.policy, m, n));
            if k == 0 {
                let layout = match config.layout {
                    LayoutChoice::Contiguous => Layout::Contiguous,
                    _ => Layout::Interleaved,
                };
                pthomas_decision(layout)
            } else {
                hybrid_decision(spec, config, m, n, elem_bytes, k)
            }
        }
        CostModel::Transactions => {
            let all = candidates(spec, config, m, n, elem_bytes, config.layout);
            all.iter()
                .min_by_key(|cand| cand.cost())
                .map(|cand| cand.decision)
                .unwrap_or_else(|| pthomas_decision(Layout::Interleaved))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::gtx480()
    }

    #[test]
    fn legacy_matches_the_historical_rule() {
        let cfg = GpuSolverConfig::default();
        // m = 2048 → heuristic k = 0 → interleaved p-Thomas.
        let d = decide(&spec(), &cfg, 2048, 128, 8);
        assert_eq!(d, pthomas_decision(Layout::Interleaved));
        // m = 64, n = 512 → k = 6 hybrid, contiguous.
        let d = decide(&spec(), &cfg, 64, 512, 8);
        assert_eq!(d.k, 6);
        assert_eq!(d.layout, Layout::Contiguous);
        assert_eq!(d.mapping, MappingVariant::BlockPerSystem);
        assert!(!d.fused);
    }

    #[test]
    fn forced_interleaved_is_always_the_pure_pthomas_path() {
        let cfg = GpuSolverConfig {
            layout: LayoutChoice::Interleaved,
            ..Default::default()
        };
        for (m, n) in [(64usize, 512usize), (1, 16384), (2048, 64)] {
            let d = decide(&spec(), &cfg, m, n, 8);
            assert_eq!(d, pthomas_decision(Layout::Interleaved), "m={m} n={n}");
        }
    }

    #[test]
    fn forced_contiguous_at_k0_is_the_strawman() {
        let cfg = GpuSolverConfig {
            layout: LayoutChoice::Contiguous,
            ..Default::default()
        };
        let d = decide(&spec(), &cfg, 2048, 128, 8);
        assert_eq!(d, pthomas_decision(Layout::Contiguous));
        // k > 0 geometries keep the hybrid.
        let d = decide(&spec(), &cfg, 64, 512, 8);
        assert!(d.k > 0);
        assert_eq!(d.layout, Layout::Contiguous);
    }

    #[test]
    fn transactions_model_picks_interleaved_at_large_m() {
        let cfg = GpuSolverConfig {
            cost: CostModel::Transactions,
            ..Default::default()
        };
        let d = decide(&spec(), &cfg, 1024, 512, 8);
        assert_eq!(d.layout, Layout::Interleaved);
        assert_eq!(d.k, 0);
        // A lone huge system keeps the hybrid: serializing one thread
        // over 16384 rows would idle the whole device.
        let d = decide(&spec(), &cfg, 1, 16384, 8);
        assert_eq!(d.layout, Layout::Contiguous);
        assert!(d.k > 0);
    }

    #[test]
    fn transactions_model_never_picks_the_strawman() {
        let cfg = GpuSolverConfig {
            cost: CostModel::Transactions,
            ..Default::default()
        };
        for (m, n) in [
            (1usize, 16384usize),
            (16, 1024),
            (64, 512),
            (256, 512),
            (1024, 512),
            (2048, 64),
        ] {
            for eb in [4usize, 8] {
                let d = decide(&spec(), &cfg, m, n, eb);
                assert!(
                    d.k > 0 || d.layout == Layout::Interleaved,
                    "m={m} n={n} eb={eb}: strawman chosen ({d:?})"
                );
            }
        }
    }

    #[test]
    fn interleaved_wins_modeled_transactions_at_large_m() {
        for m in [64usize, 256, 1024] {
            let i = pthomas_transactions(&spec(), Layout::Interleaved, m, 512, 8);
            let c = pthomas_transactions(&spec(), Layout::Contiguous, m, 512, 8);
            assert!(i < c, "m={m}: interleaved {i} vs contiguous {c}");
        }
        // m = 1 is the degenerate tie: one lane, one segment.
        assert_eq!(
            pthomas_transactions(&spec(), Layout::Interleaved, 1, 64, 8),
            pthomas_transactions(&spec(), Layout::Contiguous, 1, 64, 8),
        );
    }

    #[test]
    fn candidate_enumeration_is_deterministic_and_ordered() {
        let cfg = GpuSolverConfig {
            cost: CostModel::Transactions,
            ..Default::default()
        };
        let a = candidates(&spec(), &cfg, 64, 512, 8, LayoutChoice::Auto);
        let b = candidates(&spec(), &cfg, 64, 512, 8, LayoutChoice::Auto);
        assert_eq!(a, b);
        assert_eq!(a[0].decision.layout, Layout::Interleaved);
        assert_eq!(a[1].decision.layout, Layout::Contiguous);
        assert_eq!(a[1].decision.k, 0);
        assert!(a.len() > 2, "hybrid candidates missing");
        let only_inter = candidates(&spec(), &cfg, 64, 512, 8, LayoutChoice::Interleaved);
        assert_eq!(only_inter.len(), 1);
    }
}
