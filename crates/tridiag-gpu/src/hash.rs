//! Bit-exact fingerprints of solver outputs.
//!
//! The differential harnesses (sharded, service) compare solves for
//! *bit* identity, not closeness: a hash over the shortest round-trip
//! (`{:?}`) representation of every element distinguishes any two
//! vectors that differ in even one ULP, while staying stable across
//! platforms (Rust's float formatting is shortest-round-trip by spec).

/// FNV-1a offset basis (64-bit).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Fold `bytes` into a running FNV-1a state.
pub fn fnv1a_extend(mut h: u64, bytes: impl IntoIterator<Item = u8>) -> u64 {
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over the shortest round-trip (`{:?}`) representation of every
/// solution element — a bit-exact fingerprint of the output vector.
pub fn solution_hash<S: std::fmt::Debug>(x: &[S]) -> u64 {
    let mut h = FNV_OFFSET;
    for v in x {
        h = fnv1a_extend(h, format!("{v:?}").bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_ulp_changes_the_hash() {
        let a = vec![1.0f64, 2.0, 3.0];
        let mut b = a.clone();
        b[1] = f64::from_bits(b[1].to_bits() + 1);
        assert_ne!(solution_hash(&a), solution_hash(&b));
        assert_eq!(solution_hash(&a), solution_hash(&a.clone()));
    }

    #[test]
    fn precision_is_part_of_the_fingerprint() {
        // f32 and f64 debug-format differently only when the value
        // round-trips differently, so hash equality across widths is
        // possible for exact values — the *callers* key on width too.
        let x32 = vec![0.5f32];
        let x64 = vec![0.5f64];
        assert_eq!(solution_hash(&x32), solution_hash(&x64));
    }
}
