//! Cost constants shared by the kernels and the figure harness.

/// FLOPs charged per PCR row reduction (Eqs. 5–6): two divisions (k1,
/// k2, weighted), six multiplies, four subtractions, one negation pair.
pub const PCR_FLOPS_PER_ROW: u64 = 14;

/// FLOPs charged per Thomas forward-reduction row (Eqs. 2–3): one
/// division (weighted), three multiplies, two subtractions.
pub const THOMAS_FWD_FLOPS: u64 = 8;

/// FLOPs charged per Thomas backward-substitution row (Eq. 4).
pub const THOMAS_BWD_FLOPS: u64 = 2;

/// Default p-Thomas threads per block.
pub const PTHOMAS_BLOCK: u32 = 128;

/// Register estimates fed to the occupancy model (what `nvcc -v` would
/// report for kernels of this complexity).
pub const REGS_PTHOMAS: u32 = 24;
/// Tiled PCR holds window offsets and row registers.
pub const REGS_TILED_PCR: u32 = 32;
/// In-shared PCR is register-light.
pub const REGS_PCR_SHARED: u32 = 20;
/// The fused kernel carries both kernels' register sets.
pub const REGS_FUSED: u32 = 40;
