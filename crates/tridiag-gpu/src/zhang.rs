//! Zhang et al. \[16\]\[17\]-style in-shared-memory hybrid — the
//! conventional approach whose size limitation motivates tiled PCR.
//!
//! "Both approaches can only solve small sized systems as their methods
//! store an entire input system in shared memory. As a result, the
//! limited capacity of shared memory considerably limits their
//! availability for real use" (Section I). This wrapper makes that
//! limitation a first-class, typed error so the figure harness can show
//! exactly where the conventional method stops scaling.

use crate::buffers::{upload, GpuScalar};
use crate::consts::REGS_PCR_SHARED;
use crate::kernels::pcr_shared::PcrSharedKernel;
use crate::solver::KernelReport;
use gpu_sim::timing::{time_kernel, TrafficSummary};
use gpu_sim::{launch, DeviceSpec, GpuMemory, LaunchConfig, Precision, Result, SimError};
use tridiag_core::{Layout, SystemBatch};

/// Report of one Zhang-style solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ZhangReport {
    /// PCR steps before the in-shared Thomas finish.
    pub pcr_steps: u32,
    /// The single kernel's report.
    pub kernel: KernelReport,
    /// Total modeled time (µs).
    pub total_us: f64,
}

/// Largest `n` this method can handle on `spec` at `elem_bytes`.
pub fn max_system_size(spec: &DeviceSpec, elem_bytes: usize) -> usize {
    PcrSharedKernel::max_n(spec.max_shared_per_block, elem_bytes)
}

/// Solve `batch` with the whole-system-in-shared-memory hybrid.
///
/// # Errors
/// [`SimError::InvalidLaunch`] when a system exceeds
/// [`max_system_size`] — the structural failure mode the paper fixes.
pub fn solve_batch<S: GpuScalar>(
    spec: &DeviceSpec,
    batch: &SystemBatch<S>,
    pcr_steps: Option<u32>,
) -> Result<(Vec<S>, ZhangReport)> {
    let m = batch.num_systems();
    let n = batch.system_len();
    let cap = max_system_size(spec, <S as gpu_sim::Elem>::BYTES);
    if n > cap {
        return Err(SimError::InvalidLaunch(format!(
            "system of {n} rows exceeds the {cap}-row shared-memory capacity of the \
             in-shared-memory hybrid on {}",
            spec.name
        )));
    }
    let contig = batch.to_layout(Layout::Contiguous);
    let mut mem = GpuMemory::new();
    let dev = upload(&mut mem, &contig);
    let steps = pcr_steps.unwrap_or_else(|| {
        // A sensible default: reduce until ~one row per thread.
        tridiag_core::pcr::full_steps(n).saturating_sub(2)
    });
    let kernel = PcrSharedKernel {
        input: [dev.a, dev.b, dev.c, dev.d],
        x: dev.x,
        n,
        steps: Some(steps),
    };
    let precision = if <S as gpu_sim::Elem>::BYTES == 4 {
        Precision::F32
    } else {
        Precision::F64
    };
    let cfg = LaunchConfig::new("zhang_pcr_thomas", m, (n as u32).clamp(32, 512))
        .with_regs(REGS_PCR_SHARED);
    let res = launch(spec, &cfg, &kernel, &mut mem)?;
    let report = KernelReport {
        timing: time_kernel(spec, &res, precision),
        traffic: TrafficSummary::from_stats(spec, &res.stats),
        shared_bytes: res.shared_bytes_per_block,
        blocks: res.stats.blocks,
    };
    let xr = mem.read(dev.x)?;
    let mut out = vec![S::ZERO; batch.total_len()];
    for sys in 0..m {
        for row in 0..n {
            out[batch.index(sys, row)] = xr[sys * n + row];
        }
    }
    let total_us = report.timing.total_us;
    Ok((
        out,
        ZhangReport {
            pcr_steps: steps,
            kernel: report,
            total_us,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::generators::random_batch;

    #[test]
    fn solves_small_systems() {
        for n in [64usize, 256, 768] {
            let batch = random_batch::<f64>(8, n, n as u64);
            let (x, rep) = solve_batch(&DeviceSpec::gtx480(), &batch, None).unwrap();
            assert!(batch.max_relative_residual(&x).unwrap() < 1e-9, "n={n}");
            assert!(rep.total_us > 0.0);
        }
    }

    #[test]
    fn capacity_limits_match_the_paper_complaint() {
        let spec = DeviceSpec::gtx480();
        assert_eq!(max_system_size(&spec, 8), 768);
        assert_eq!(max_system_size(&spec, 4), 1536);
        let batch = random_batch::<f64>(1, 769, 1);
        assert!(solve_batch(&spec, &batch, None).is_err());
        // GTX280's 16 KiB makes it worse.
        assert_eq!(max_system_size(&DeviceSpec::gtx280(), 8), 256);
    }

    #[test]
    fn explicit_step_count() {
        let batch = random_batch::<f64>(2, 128, 3);
        let (x, rep) = solve_batch(&DeviceSpec::gtx480(), &batch, Some(3)).unwrap();
        assert_eq!(rep.pcr_steps, 3);
        assert!(batch.max_relative_residual(&x).unwrap() < 1e-10);
    }
}
