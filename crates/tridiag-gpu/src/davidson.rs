//! Re-implementation of the Davidson et al. \[19\] auto-tuned PCR-Thomas
//! hybrid — the baseline of Section V.
//!
//! Structure (from the paper's description):
//!
//! 1. **Lockstep global PCR**: "each PCR step is performed in lockstep
//!    until the size of reduced input fits in shared memory". Each step
//!    is a *separate kernel launch* over the whole input reading and
//!    writing global memory (ping-pong) — the global synchronisation
//!    whose "expensive kernel termination and relaunch" the paper calls
//!    out. Per step the full four coefficient arrays make a DRAM round
//!    trip.
//! 2. **Coarse-grained finish**: each reduced subsystem is mapped to one
//!    block that loads it *entirely* into shared memory and solves it
//!    with in-shared PCR + per-thread Thomas. The subsystem rows are
//!    strided by `2^q` in memory, so these loads are poorly coalesced,
//!    and the maximal shared-memory tiles leave only 1–2 resident
//!    blocks per SM ("large shared memory requirement, fewer concurrent
//!    thread blocks, and exposed latency").
//!
//! Davidson's actual code auto-tunes a few parameters; we pick the
//! structurally-implied optimum (fewest global steps that make the
//! finish fit), which is generous to the baseline.

use crate::buffers::{upload, GpuScalar};
use crate::consts::{PCR_FLOPS_PER_ROW, THOMAS_BWD_FLOPS, THOMAS_FWD_FLOPS};
use crate::solver::KernelReport;
use gpu_sim::timing::{time_kernel, TrafficSummary};
use gpu_sim::{
    launch, BlockCtx, BlockKernel, BufId, DeviceSpec, GpuMemory, LaunchConfig, Precision, Result,
    SimError,
};
use tridiag_core::cr::{reduce_row, Row};
use tridiag_core::{Layout, SystemBatch};

/// One lockstep global PCR step (one kernel launch): every row `i` of
/// every system is rewritten using rows `i ± stride`.
#[derive(Debug, Clone, Copy)]
struct GlobalPcrStepKernel {
    src: [BufId; 4],
    dst: [BufId; 4],
    n: usize,
    m: usize,
    stride: usize,
}

impl<S: GpuScalar> BlockKernel<S> for GlobalPcrStepKernel {
    fn run_block(&self, ctx: &mut BlockCtx<'_, S>) -> Result<()> {
        let total = self.m * self.n;
        let base = ctx.block_id * ctx.threads;
        let count = ctx.threads.min(total.saturating_sub(base));
        if count == 0 {
            return Ok(());
        }
        let rows: Vec<usize> = (base..base + count).collect();

        // Gather the three dependency rows per lane; out-of-range lanes
        // (crossing a system boundary) use the identity row without a
        // load.
        let mut vals: Vec<[[S; 4]; 3]> = vec![[[S::ZERO; 4]; 3]; count];
        let mut tmp = Vec::new();
        for (d, sign) in [(0usize, -1isize), (1, 0), (2, 1)] {
            let mut idx = Vec::with_capacity(count);
            let mut lanes = Vec::with_capacity(count);
            for (lane, &g) in rows.iter().enumerate() {
                let sys = g / self.n;
                let i = (g % self.n) as isize + sign * self.stride as isize;
                if i >= 0 && (i as usize) < self.n {
                    idx.push(sys * self.n + i as usize);
                    lanes.push(lane);
                }
            }
            for arr in 0..4 {
                let ident = if arr == 1 { S::ONE } else { S::ZERO };
                for v in vals.iter_mut() {
                    v[d][arr] = ident;
                }
                for (chunk, lane_chunk) in idx.chunks(ctx.threads).zip(lanes.chunks(ctx.threads)) {
                    ctx.ld(self.src[arr], chunk, &mut tmp)?;
                    for (o, &lane) in lane_chunk.iter().enumerate() {
                        vals[lane][d][arr] = tmp[o];
                    }
                }
            }
        }

        let mut out: [Vec<S>; 4] = Default::default();
        for (lane, v) in vals.iter().enumerate() {
            let to_row = |w: [S; 4]| Row {
                a: w[0],
                b: w[1],
                c: w[2],
                d: w[3],
            };
            let r = reduce_row(to_row(v[0]), to_row(v[1]), to_row(v[2]), rows[lane])
                .map_err(|e| SimError::KernelFault(e.to_string()))?;
            out[0].push(r.a);
            out[1].push(r.b);
            out[2].push(r.c);
            out[3].push(r.d);
        }
        ctx.flops(count as u64 * PCR_FLOPS_PER_ROW);
        for arr in 0..4 {
            ctx.st(self.dst[arr], &rows, &out[arr])?;
        }
        Ok(())
    }
}

/// The coarse-grained finish: one block per subsystem, whole subsystem
/// in shared memory, in-shared PCR then per-thread Thomas.
#[derive(Debug, Clone, Copy)]
struct DavidsonFinalKernel {
    src: [BufId; 4],
    x: BufId,
    n: usize,
    /// Global PCR steps already applied (subsystem stride `2^q`).
    q: u32,
    /// Further in-shared PCR steps before the Thomas finish.
    shared_steps: u32,
}

impl<S: GpuScalar> BlockKernel<S> for DavidsonFinalKernel {
    fn run_block(&self, ctx: &mut BlockCtx<'_, S>) -> Result<()> {
        let stride = 1usize << self.q;
        let sub = ctx.block_id % stride; // subsystem j of system sys
        let sys = ctx.block_id / stride;
        let rows: Vec<usize> = (sub..self.n).step_by(stride).collect();
        let ln = rows.len();

        // Load the whole (strided → uncoalesced) subsystem into shared.
        let mut base = [[0usize; 4]; 2];
        for half in base.iter_mut() {
            for b in half.iter_mut() {
                *b = ctx.shared_alloc(ln)?;
            }
        }
        let g_idx: Vec<usize> = rows.iter().map(|&r| sys * self.n + r).collect();
        let mut tmp = Vec::new();
        for arr in 0..4 {
            for (chunk, start) in g_idx.chunks(ctx.threads).zip((0..ln).step_by(ctx.threads)) {
                ctx.ld(self.src[arr], chunk, &mut tmp)?;
                let si: Vec<usize> = (0..chunk.len()).map(|o| base[0][arr] + start + o).collect();
                ctx.sh_st(&si, &tmp)?;
            }
        }
        ctx.sync();

        // In-shared lockstep PCR.
        let mut cur = 0usize;
        let shared_steps = self
            .shared_steps
            .min(tridiag_core::pcr::full_steps(ln));
        let mut vals: Vec<[S; 4]> = vec![[S::ZERO; 4]; ln];
        for step in 0..shared_steps {
            let s = 1usize << step;
            let nxt = 1 - cur;
            for arr in 0..4 {
                let si: Vec<usize> = (0..ln).map(|i| base[cur][arr] + i).collect();
                for (chunk, start) in si.chunks(ctx.threads).zip((0..ln).step_by(ctx.threads)) {
                    ctx.sh_ld(chunk, &mut tmp)?;
                    for (o, &v) in tmp.iter().enumerate() {
                        vals[start + o][arr] = v;
                    }
                }
            }
            let row = |i: isize| -> Row<S> {
                if i < 0 || i >= ln as isize {
                    Row::identity()
                } else {
                    let v = vals[i as usize];
                    Row {
                        a: v[0],
                        b: v[1],
                        c: v[2],
                        d: v[3],
                    }
                }
            };
            let mut out: Vec<Row<S>> = Vec::with_capacity(ln);
            for i in 0..ln as isize {
                out.push(
                    reduce_row(row(i - s as isize), row(i), row(i + s as isize), i as usize)
                        .map_err(|e| SimError::KernelFault(e.to_string()))?,
                );
            }
            ctx.flops(ln as u64 * PCR_FLOPS_PER_ROW);
            ctx.sync();
            for arr in 0..4 {
                let si: Vec<usize> = (0..ln).map(|i| base[nxt][arr] + i).collect();
                let sv: Vec<S> = out
                    .iter()
                    .map(|r| match arr {
                        0 => r.a,
                        1 => r.b,
                        2 => r.c,
                        _ => r.d,
                    })
                    .collect();
                for (ci, cv) in si.chunks(ctx.threads).zip(sv.chunks(ctx.threads)) {
                    ctx.sh_st(ci, cv)?;
                }
            }
            ctx.sync();
            cur = nxt;
        }

        // Per-thread Thomas over the 2^shared_steps interleaved strands.
        for arr in 0..4 {
            let si: Vec<usize> = (0..ln).map(|i| base[cur][arr] + i).collect();
            for (chunk, start) in si.chunks(ctx.threads).zip((0..ln).step_by(ctx.threads)) {
                ctx.sh_ld(chunk, &mut tmp)?;
                for (o, &v) in tmp.iter().enumerate() {
                    vals[start + o][arr] = v;
                }
            }
        }
        let strands = 1usize << shared_steps;
        let mut x_local = vec![S::ZERO; ln];
        for j in 0..strands.min(ln) {
            let idxs: Vec<usize> = (j..ln).step_by(strands).collect();
            let sl = idxs.len();
            let mut cp = vec![S::ZERO; sl];
            let mut dp = vec![S::ZERO; sl];
            for (r, &i) in idxs.iter().enumerate() {
                let [a, b, c, d] = vals[i];
                if r == 0 {
                    if b == S::ZERO {
                        return Err(SimError::KernelFault("zero pivot".into()));
                    }
                    cp[0] = c / b;
                    dp[0] = d / b;
                } else {
                    let denom = b - cp[r - 1] * a;
                    if denom == S::ZERO {
                        return Err(SimError::KernelFault("zero pivot".into()));
                    }
                    let inv = S::ONE / denom;
                    cp[r] = c * inv;
                    dp[r] = (d - dp[r - 1] * a) * inv;
                }
            }
            x_local[idxs[sl - 1]] = dp[sl - 1];
            for r in (0..sl - 1).rev() {
                x_local[idxs[r]] = dp[r] - cp[r] * x_local[idxs[r + 1]];
            }
        }
        ctx.flops(ln as u64 * (THOMAS_FWD_FLOPS + THOMAS_BWD_FLOPS));

        // Scatter (strided) solution back.
        for (chunk, start) in g_idx.chunks(ctx.threads).zip((0..ln).step_by(ctx.threads)) {
            ctx.st(self.x, chunk, &x_local[start..start + chunk.len()])?;
        }
        Ok(())
    }
}

/// Report of one Davidson-style solve.
#[derive(Debug, Clone, PartialEq)]
pub struct DavidsonReport {
    /// Global lockstep PCR steps (each a kernel launch).
    pub global_steps: u32,
    /// Per-kernel reports in launch order (`global_steps + 1` entries).
    pub kernels: Vec<KernelReport>,
    /// Total modeled time (µs).
    pub total_us: f64,
}

/// Solve `batch` the Davidson way on `spec`.
pub fn solve_batch<S: GpuScalar>(
    spec: &DeviceSpec,
    batch: &SystemBatch<S>,
) -> Result<(Vec<S>, DavidsonReport)> {
    let m = batch.num_systems();
    let n = batch.system_len();
    let precision = if <S as gpu_sim::Elem>::BYTES == 4 {
        Precision::F32
    } else {
        Precision::F64
    };

    // Fewest global steps that make a subsystem fit the (double-
    // buffered) shared-memory finish.
    let max_rows_shared = spec.max_shared_per_block / (8 * <S as gpu_sim::Elem>::BYTES);
    let mut q = 0u32;
    while n.div_ceil(1 << q) > max_rows_shared {
        q += 1;
        if (1usize << q) > n {
            return Err(SimError::InvalidLaunch(format!(
                "system of {n} rows cannot be reduced to fit {max_rows_shared}-row shared tiles"
            )));
        }
    }

    let contig = batch.to_layout(Layout::Contiguous);
    let mut mem = GpuMemory::new();
    let dev = upload(&mut mem, &contig);
    let mut kernels = Vec::new();

    // Ping-pong buffers for the global steps.
    let mut src = [dev.a, dev.b, dev.c, dev.d];
    let mut dst = [
        mem.alloc(m * n),
        mem.alloc(m * n),
        mem.alloc(m * n),
        mem.alloc(m * n),
    ];
    let threads = 256u32;
    for step in 0..q {
        let kernel = GlobalPcrStepKernel {
            src,
            dst,
            n,
            m,
            stride: 1usize << step,
        };
        let cfg = LaunchConfig::new(
            "davidson_global_pcr",
            (m * n).div_ceil(threads as usize),
            threads,
        )
        .with_regs(40);
        let res = launch(spec, &cfg, &kernel, &mut mem)?;
        kernels.push(KernelReport {
            timing: time_kernel(spec, &res, precision),
            traffic: TrafficSummary::from_stats(spec, &res.stats),
            shared_bytes: res.shared_bytes_per_block,
            blocks: res.stats.blocks,
        });
        std::mem::swap(&mut src, &mut dst);
    }

    // Coarse-grained shared-memory finish: one block per subsystem.
    let sub_rows = n.div_ceil(1 << q);
    let final_threads = (sub_rows as u32).clamp(32, 256);
    let kernel = DavidsonFinalKernel {
        src,
        x: dev.x,
        n,
        q,
        shared_steps: 4,
    };
    let cfg = LaunchConfig::new("davidson_finish", m << q, final_threads).with_regs(32);
    let res = launch(spec, &cfg, &kernel, &mut mem)?;
    kernels.push(KernelReport {
        timing: time_kernel(spec, &res, precision),
        traffic: TrafficSummary::from_stats(spec, &res.stats),
        shared_bytes: res.shared_bytes_per_block,
        blocks: res.stats.blocks,
    });

    let xr = mem.read(dev.x)?;
    let mut out = vec![S::ZERO; batch.total_len()];
    for sys in 0..m {
        for row in 0..n {
            out[batch.index(sys, row)] = xr[sys * n + row];
        }
    }
    let total_us = kernels.iter().map(|k: &KernelReport| k.timing.total_us).sum();
    Ok((
        out,
        DavidsonReport {
            global_steps: q,
            kernels,
            total_us,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve_batch_gtx480;
    use tridiag_core::generators::random_batch;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
    fn solves_correctly() {
        for (m, n) in [(1usize, 4096usize), (4, 2048), (16, 512), (2, 1000)] {
            let batch = random_batch::<f64>(m, n, 3 + n as u64);
            let (x, rep) = solve_batch(&DeviceSpec::gtx480(), &batch).unwrap();
            let resid = batch.max_relative_residual(&x).unwrap();
            assert!(resid < 1e-8, "m={m} n={n}: {resid}");
            // n > 768 (f64) needs at least one global step.
            if n > 768 {
                assert!(rep.global_steps > 0);
            }
            assert_eq!(rep.kernels.len(), rep.global_steps as usize + 1);
        }
    }

    #[test]
    fn small_systems_skip_global_steps() {
        let batch = random_batch::<f64>(8, 512, 5);
        let (_, rep) = solve_batch(&DeviceSpec::gtx480(), &batch).unwrap();
        assert_eq!(rep.global_steps, 0);
        assert_eq!(rep.kernels.len(), 1);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
    fn ours_beats_davidson_on_large_systems() {
        // The Section V claim: 2–10x faster for most cases.
        for (m, n) in [(1usize, 1 << 15), (4, 1 << 14)] {
            let batch = random_batch::<f64>(m, n, 9);
            let (_, ours) = solve_batch_gtx480(&batch).unwrap();
            let (_, theirs) = solve_batch(&DeviceSpec::gtx480(), &batch).unwrap();
            assert!(
                theirs.total_us > 1.5 * ours.total_us,
                "m={m} n={n}: ours {:.1}us davidson {:.1}us",
                ours.total_us,
                theirs.total_us
            );
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
    fn davidson_pays_per_step_global_traffic() {
        let batch = random_batch::<f64>(1, 1 << 14, 11);
        let (_, rep) = solve_batch(&DeviceSpec::gtx480(), &batch).unwrap();
        // Every global step re-reads and re-writes ~4 arrays.
        let per_step_bytes = 4.0 * (1 << 14) as f64 * 8.0;
        let global_traffic: f64 = rep.kernels[..rep.global_steps as usize]
            .iter()
            .map(|k| k.traffic.traffic_mib * 1024.0 * 1024.0)
            .sum();
        assert!(global_traffic > rep.global_steps as f64 * 1.5 * per_step_bytes);
    }
}
