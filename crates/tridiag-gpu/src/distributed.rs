//! Distributed single-system solve: one system of length `n` split
//! across a [`DeviceGroup`] by rows.
//!
//! Sharding ([`crate::sharded`]) partitions *systems*; it cannot help
//! when a **single** system outgrows one device's memory. This module
//! implements the standard substructuring decomposition for that case:
//!
//! 1. **Partition** the `n` rows into `D` contiguous chunks (±1
//!    balance, the [`crate::plan::partition_systems`] idiom), each at
//!    least 2 rows so it owns an interface pair.
//! 2. **Partial elimination** per device: a chunk's first and last rows
//!    are its *interface* unknowns; the `L - 2` interior rows form an
//!    independent tridiagonal system once the couplings to the
//!    interface pair are moved to the right-hand side. Each device
//!    solves that interior system for three right-hand sides — the
//!    original interior RHS `y`, the unit load from the left interface
//!    `u`, and the unit load from the right interface `w` — by running
//!    **one** `m = 1` [`SolvePlan`] three times through a private
//!    [`PlanExecutor`]. The peak resident footprint per device is then
//!    that of an `n/D`-row plan, which is what lets a system that
//!    overflows one device fit on `D`.
//! 3. **Gather** the modified interface rows (two per chunk, four
//!    coefficients each) to the primary device over the PCIe cost
//!    model ([`StreamOp::CopyD2H`]).
//! 4. **Reduced solve**: the `2D` interface unknowns form a genuinely
//!    tridiagonal system (each interface row couples only to its
//!    partner in the same chunk and to the adjacent row of the
//!    neighbouring chunk); the primary device solves it with the
//!    ordinary kernel zoo.
//! 5. **Scatter** each chunk's interface pair back
//!    ([`StreamOp::CopyH2D`], PCIe-serialized — one bus), then finish
//!    with per-device **back substitution**
//!    `x_interior = y - x_first * u - x_last * w`. The scatter copies
//!    are serialized across the bus in device order, so device 0's
//!    back-substitution overlaps device `D-1`'s interface wait — the
//!    pipelining is visible in the merged timeline and trace.
//!
//! Numerics: the interior eliminations reorder the arithmetic of the
//! single-device pipeline, so for `D >= 2` the result matches the
//! single-device solution to a condition-derived tolerance rather than
//! bit-for-bit (see DESIGN.md §15); `D == 1` short-circuits to the
//! identity path and *is* bit-identical. The 3-RHS formulation costs
//! roughly 3x the interior flops of a plain Thomas sweep — the price
//! of capacity, not a speedup at small `D`.

use crate::buffers::GpuScalar;
use crate::executor::PlanExecutor;
use crate::plan::{SolvePlan, Step};
use crate::solver::{DistributedSummary, GpuSolveReport, GpuSolverConfig, ShardSummary};
use gpu_sim::group::copy_us;
use gpu_sim::json::schema::Check;
use gpu_sim::trace::Trace;
use gpu_sim::{
    DeviceGroup, ExecConfig, GroupTimeline, Json, Result, SimError, StreamOp,
};
use tridiag_core::{SystemBatch, TridiagonalSystem};

/// Split `n` rows of one system across `d` devices into contiguous
/// `(row_start, row_count)` chunks, sizes balanced within 1, earlier
/// chunks taking the remainder — the [`crate::plan::partition_systems`]
/// idiom applied to rows. Every chunk needs at least 2 rows (its
/// interface pair), so this requires `n >= 2 * d`.
pub fn partition_rows(n: usize, d: usize) -> Result<Vec<(usize, usize)>> {
    if d == 0 {
        return Err(SimError::InvalidPlan("device group is empty".into()));
    }
    if n == 0 {
        return Err(SimError::InvalidPlan(
            "cannot split an empty system (n = 0)".into(),
        ));
    }
    if n < 2 * d {
        return Err(SimError::InvalidPlan(format!(
            "cannot split {n} row(s) across {d} device(s): each chunk needs at \
             least 2 rows for its interface pair (n >= {})",
            2 * d
        )));
    }
    let base = n / d;
    let rem = n % d;
    let mut chunks = Vec::with_capacity(d);
    let mut start = 0usize;
    for i in 0..d {
        let count = base + usize::from(i < rem);
        chunks.push((start, count));
        start += count;
    }
    debug_assert_eq!(start, n);
    Ok(chunks)
}

/// One device's share of a distributed solve: which rows it owns and
/// the interior-elimination [`SolvePlan`] (built against *its* spec)
/// for its `row_count - 2` interior rows. A 2-row chunk is all
/// interface — it has no interior system and `interior` is `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkPlan {
    /// Index into the [`DeviceGroup`] this chunk runs on.
    pub device_index: usize,
    /// Device name (the spec the interior plan was built for).
    pub device: &'static str,
    /// First row (in the caller's system) this chunk owns.
    pub row_start: usize,
    /// Number of rows this chunk owns (>= 2).
    pub row_count: usize,
    /// `m = 1, n = row_count - 2` plan for the interior elimination,
    /// run three times (RHS `y`, `u`, `w`). `None` iff `row_count == 2`.
    pub interior: Option<SolvePlan>,
}

impl ChunkPlan {
    /// Interior row count (`row_count - 2`).
    pub fn interior_len(&self) -> usize {
        self.row_count - 2
    }
}

/// A single system of `n` rows split across a [`DeviceGroup`]: one
/// [`ChunkPlan`] per device plus the `2D`-row reduced interface plan on
/// the primary device. A single-device group short-circuits to the
/// identity: `identity` holds the ordinary `m = 1` plan and both
/// `chunks` and `reduced` are empty.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedPlan {
    /// Rows in the full system.
    pub n: usize,
    /// Scalar width in bytes (4 or 8).
    pub elem_bytes: usize,
    /// Precision label (`"f32"` / `"f64"`).
    pub precision: &'static str,
    /// `D == 1` short-circuit: the plain single-device plan.
    /// `Some` iff the group has one device.
    pub identity: Option<SolvePlan>,
    /// Per-device chunk plans, in device order. Empty iff `D == 1`.
    pub chunks: Vec<ChunkPlan>,
    /// `m = 1, n = 2 * chunks.len()` plan for the reduced interface
    /// system on the primary device. `Some` iff `D > 1`.
    pub reduced: Option<SolvePlan>,
}

impl DistributedPlan {
    /// Plan a distributed solve of one `n`-row system across `group`.
    /// Pure, like [`SolvePlan::build`]. A single-device group yields
    /// the identity path.
    ///
    /// Fails with [`SimError::InvalidPlan`] on an empty or too-small
    /// geometry (`n < 2D`), an unsupported scalar width, or any
    /// per-chunk plan failure (e.g. an interior footprint beyond its
    /// device's global memory).
    pub fn build(
        group: &DeviceGroup,
        config: &GpuSolverConfig,
        n: usize,
        elem_bytes: usize,
    ) -> Result<DistributedPlan> {
        let precision = match elem_bytes {
            4 => "f32",
            8 => "f64",
            other => {
                return Err(SimError::InvalidPlan(format!(
                    "unsupported scalar width: {other} bytes (expected 4 or 8)"
                )))
            }
        };
        if group.len() == 1 {
            let plan = SolvePlan::build(group.primary(), config, 1, n, elem_bytes)?;
            return Ok(DistributedPlan {
                n,
                elem_bytes,
                precision,
                identity: Some(plan),
                chunks: Vec::new(),
                reduced: None,
            });
        }
        let d = group.len();
        let ranges = partition_rows(n, d)?;
        let chunks = ranges
            .into_iter()
            .enumerate()
            .map(|(device_index, (row_start, row_count))| {
                let spec = &group.devices()[device_index];
                let interior = if row_count == 2 {
                    None
                } else {
                    Some(
                        SolvePlan::build(spec, config, 1, row_count - 2, elem_bytes).map_err(
                            |e| match e {
                                SimError::InvalidPlan(msg) => SimError::InvalidPlan(format!(
                                    "chunk {device_index} (rows [{row_start}, {})): {msg}",
                                    row_start + row_count
                                )),
                                other => other,
                            },
                        )?,
                    )
                };
                Ok(ChunkPlan {
                    device_index,
                    device: spec.name,
                    row_start,
                    row_count,
                    interior,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let reduced = SolvePlan::build(group.primary(), config, 1, 2 * d, elem_bytes)
            .map_err(|e| match e {
                SimError::InvalidPlan(msg) => {
                    SimError::InvalidPlan(format!("reduced interface system: {msg}"))
                }
                other => other,
            })?;
        Ok(DistributedPlan {
            n,
            elem_bytes,
            precision,
            identity: None,
            chunks,
            reduced: Some(reduced),
        })
    }

    /// Number of devices (= chunks; 1 on the identity path).
    pub fn num_devices(&self) -> usize {
        if self.identity.is_some() {
            1
        } else {
            self.chunks.len()
        }
    }

    /// Total device bytes summed over every chunk's interior plan plus
    /// the reduced plan (or the identity plan).
    pub fn device_bytes(&self) -> usize {
        if let Some(p) = &self.identity {
            return p.device_bytes();
        }
        self.chunks
            .iter()
            .filter_map(|c| c.interior.as_ref())
            .map(SolvePlan::device_bytes)
            .sum::<usize>()
            + self.reduced.as_ref().map_or(0, SolvePlan::device_bytes)
    }

    /// Multi-line human description: the row partition, each chunk's
    /// device/interior geometry/footprint, and the reduced interface
    /// system.
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "distributed plan: n={} {} across {} device(s)",
            self.n,
            self.precision,
            self.num_devices()
        );
        if let Some(p) = &self.identity {
            let _ = writeln!(
                s,
                "  identity: single-device path on {} k={} kernels={} device_bytes={}",
                p.device,
                p.k,
                p.launches().map(|l| l.name).collect::<Vec<_>>().join(" -> "),
                p.device_bytes()
            );
            return s;
        }
        for c in &self.chunks {
            match &c.interior {
                Some(p) => {
                    let _ = writeln!(
                        s,
                        "  chunk {}: {} rows [{}, {}) interior n={} k={} kernels={} \
                         device_bytes={} (x3 RHS: y, u, w)",
                        c.device_index,
                        c.device,
                        c.row_start,
                        c.row_start + c.row_count,
                        c.interior_len(),
                        p.k,
                        p.launches().map(|l| l.name).collect::<Vec<_>>().join(" -> "),
                        p.device_bytes()
                    );
                }
                None => {
                    let _ = writeln!(
                        s,
                        "  chunk {}: {} rows [{}, {}) interface-only (2 rows, no \
                         interior elimination)",
                        c.device_index,
                        c.device,
                        c.row_start,
                        c.row_start + c.row_count
                    );
                }
            }
        }
        if let Some(r) = &self.reduced {
            let _ = writeln!(
                s,
                "  reduced: n={} on {} k={} kernels={} device_bytes={}",
                r.n,
                r.device,
                r.k,
                r.launches().map(|l| l.name).collect::<Vec<_>>().join(" -> "),
                r.device_bytes()
            );
        }
        s
    }

    /// Serialize as a JSON object (schema `tridiag.distributed_plan/v1`);
    /// [`validate_distributed_plan_json`] checks the shape.
    pub fn to_json(&self) -> Json {
        let chunks = self
            .chunks
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("device".into(), Json::str(c.device)),
                    ("device_index".into(), Json::num(c.device_index as f64)),
                    ("row_start".into(), Json::num(c.row_start as f64)),
                    ("row_count".into(), Json::num(c.row_count as f64)),
                    (
                        "interior".into(),
                        c.interior.as_ref().map_or(Json::Null, SolvePlan::to_json),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::str(DISTRIBUTED_PLAN_SCHEMA)),
            ("n".into(), Json::num(self.n as f64)),
            ("elem_bytes".into(), Json::num(self.elem_bytes as f64)),
            ("precision".into(), Json::str(self.precision)),
            ("devices".into(), Json::num(self.num_devices() as f64)),
            ("device_bytes".into(), Json::num(self.device_bytes() as f64)),
            (
                "identity".into(),
                self.identity.as_ref().map_or(Json::Null, SolvePlan::to_json),
            ),
            ("chunks".into(), Json::Arr(chunks)),
            (
                "reduced".into(),
                self.reduced.as_ref().map_or(Json::Null, SolvePlan::to_json),
            ),
        ])
    }
}

/// Schema identifier emitted by [`DistributedPlan::to_json`].
pub const DISTRIBUTED_PLAN_SCHEMA: &str = "tridiag.distributed_plan/v1";

/// Validate a parsed distributed-plan document against the
/// `tridiag.distributed_plan/v1` schema: field shapes, the embedded
/// identity/interior/reduced plans (via
/// [`crate::plan::validate_plan_json`]), and the partition invariants
/// (contiguous full row coverage, every chunk >= 2 rows, balance
/// within 1, `interior` present exactly when the chunk has interior
/// rows, reduced size `2D`). Returns every problem found (empty =
/// valid).
pub fn validate_distributed_plan_json(doc: &Json) -> Vec<String> {
    use crate::plan::validate_plan_json;
    let mut c = Check::new(doc);
    c.schema(DISTRIBUTED_PLAN_SCHEMA);
    c.req_str("precision");
    c.req_uints(&["n", "elem_bytes", "devices", "device_bytes"]);
    let n = doc.get("n").and_then(Json::as_num).unwrap_or(0.0) as usize;
    let declared = doc.get("devices").and_then(Json::as_num).unwrap_or(0.0) as usize;
    let identity = doc.get("identity").filter(|j| !matches!(j, Json::Null));
    let reduced = doc.get("reduced").filter(|j| !matches!(j, Json::Null));
    let chunks = doc.get("chunks").and_then(Json::as_arr).unwrap_or(&[]);
    if let Some(ident) = identity {
        // Identity path: D == 1, no chunks, no reduced system.
        c.absorb_with("identity: ", validate_plan_json(ident));
        c.ensure(declared == 1, "identity plan present but \"devices\" != 1");
        c.ensure(chunks.is_empty(), "identity plan present but chunks are listed");
        c.ensure(
            reduced.is_none(),
            "identity plan present but a reduced plan is listed",
        );
        return c.finish();
    }
    c.ensure(
        chunks.len() == declared,
        format!(
            "\"devices\" is {declared} but {} chunks are listed",
            chunks.len()
        ),
    );
    let mut cursor = 0usize;
    let mut min_count = usize::MAX;
    let mut max_count = 0usize;
    for (i, ch) in chunks.iter().enumerate() {
        let mut chc = c.child(ch, format!("chunks[{i}] "));
        chc.req_str("device");
        let num = |key: &str| ch.get(key).and_then(Json::as_num);
        match (num("device_index"), num("row_start"), num("row_count")) {
            (Some(di), Some(start), Some(count))
                if di.fract() == 0.0 && start.fract() == 0.0 && count.fract() == 0.0 =>
            {
                chc.ensure(di as usize == i, format!("has device_index {di}"));
                chc.ensure(
                    start as usize == cursor,
                    format!(
                        "starts at {start}, expected {cursor} \
                         (chunks must tile the system contiguously)"
                    ),
                );
                chc.ensure(
                    count >= 2.0,
                    format!("owns {count} row(s): a chunk needs its 2-row interface pair"),
                );
                cursor = start as usize + count as usize;
                min_count = min_count.min(count as usize);
                max_count = max_count.max(count as usize);
                let interior = ch.get("interior").filter(|j| !matches!(j, Json::Null));
                match (interior, count as usize) {
                    (None, cnt) if cnt > 2 => chc.problem(format!(
                        "has {cnt} rows but no interior plan (interface \
                         coefficients would be used before being defined)"
                    )),
                    (Some(_), 2) => {
                        chc.problem("is interface-only (2 rows) but lists an interior plan")
                    }
                    (Some(plan), cnt) => {
                        chc.absorb_with("interior: ", validate_plan_json(plan));
                        let pnum = |key: &str| plan.get(key).and_then(Json::as_num);
                        if let Some(pn) = pnum("n") {
                            chc.ensure(
                                pn as usize == cnt - 2,
                                format!(
                                    "interior plan solves n = {pn} but the chunk \
                                     has {} interior row(s)",
                                    cnt - 2
                                ),
                            );
                        }
                        if let Some(pm) = pnum("m") {
                            chc.ensure(pm == 1.0, format!("interior plan has m = {pm}, not 1"));
                        }
                    }
                    (None, _) => {}
                }
            }
            _ => chc.problem("missing integer device_index/row_start/row_count"),
        }
        c.absorb(chc);
    }
    if chunks.is_empty() {
        c.problem("no identity plan and no chunks");
    } else {
        c.ensure(
            cursor == n,
            format!("chunks cover [0, {cursor}) but the system has n = {n} rows"),
        );
        c.ensure(
            max_count == 0 || max_count - min_count <= 1,
            format!("chunk sizes unbalanced: min {min_count}, max {max_count} (allowed skew 1)"),
        );
    }
    match reduced {
        Some(plan) => {
            c.absorb_with("reduced: ", validate_plan_json(plan));
            let pnum = |key: &str| plan.get(key).and_then(Json::as_num);
            if let Some(rn) = pnum("n") {
                c.ensure(
                    rn as usize == 2 * chunks.len(),
                    format!(
                        "reduced plan solves n = {rn} but {} chunks need {} \
                         interface unknowns",
                        chunks.len(),
                        2 * chunks.len()
                    ),
                );
            }
            if let Some(rm) = pnum("m") {
                c.ensure(rm == 1.0, format!("reduced plan has m = {rm}, not 1"));
            }
        }
        None => c.problem("missing reduced interface plan"),
    }
    c.finish()
}

/// What one chunk's worker thread hands back: the three interior
/// solutions, the modified interface rows, and the per-run artifacts.
struct ChunkRun<S> {
    /// Interior solution for the original RHS (empty when `L == 2`).
    y: Vec<S>,
    /// Interior solution for the left-interface unit load.
    u: Vec<S>,
    /// Interior solution for the right-interface unit load.
    w: Vec<S>,
    /// Modified first interface row `(a, b, c, d)` in reduced-system
    /// coefficients.
    row_first: (S, S, S, S),
    /// Modified last interface row.
    row_last: (S, S, S, S),
    /// One report per interior run (`y`, `u`, `w`), empty when `L == 2`.
    reports: Vec<GpuSolveReport>,
    flops: u64,
    global_transactions: u64,
    global_bytes: u64,
}

/// Drives a [`DistributedPlan`] across a [`DeviceGroup`], one thread
/// per chunk for the interior eliminations, the reduced interface
/// solve on the primary device, and merges the results into one
/// [`GpuSolveReport`].
#[derive(Debug, Clone)]
pub struct DistributedExecutor {
    group: DeviceGroup,
    exec: ExecConfig,
}

impl DistributedExecutor {
    /// An executor for `group` with execution options `exec` (applied
    /// to every chunk's kernels and the reduced solve).
    pub fn new(group: DeviceGroup, exec: ExecConfig) -> Self {
        Self { group, exec }
    }

    /// The device group this executor drives.
    pub fn group(&self) -> &DeviceGroup {
        &self.group
    }

    /// Execute `plan` over `batch` (which must hold exactly one system
    /// of `plan.n` rows). Returns the solution plus the merged report.
    ///
    /// Fails with [`SimError::InvalidPlan`] when the batch does not
    /// match the plan's geometry/width, the plan was built for a
    /// different device count, or static verification
    /// ([`crate::verify::verify_distributed_plan`]) finds a problem;
    /// any chunk failure (including a worker panic, reported as
    /// [`SimError::KernelFault`] with chunk attribution) aborts the
    /// whole solve.
    pub fn run<S: GpuScalar + Send + Sync>(
        &self,
        plan: &DistributedPlan,
        batch: &SystemBatch<S>,
    ) -> Result<(Vec<S>, GpuSolveReport)> {
        if batch.num_systems() != 1 {
            return Err(SimError::InvalidPlan(format!(
                "distributed solve takes exactly one system, got m = {}",
                batch.num_systems()
            )));
        }
        if batch.system_len() != plan.n {
            return Err(SimError::InvalidPlan(format!(
                "batch has {} rows but the distributed plan was built for n = {}",
                batch.system_len(),
                plan.n
            )));
        }
        if <S as gpu_sim::Elem>::BYTES != plan.elem_bytes {
            return Err(SimError::InvalidPlan(format!(
                "batch scalar is {} bytes but the distributed plan was built for {}",
                <S as gpu_sim::Elem>::BYTES,
                plan.elem_bytes
            )));
        }
        let expected_devices = plan.num_devices();
        if expected_devices != self.group.len() {
            return Err(SimError::InvalidPlan(format!(
                "distributed plan has {} chunk(s) but the group has {} device(s)",
                expected_devices,
                self.group.len()
            )));
        }
        // Cross-device static verification gates execution: partition
        // coverage, interface dataflow, reduced-system geometry, and
        // every chunk's own certificate against its device.
        let dist_verify = crate::verify::verify_distributed_plan(&self.group, plan);
        if !dist_verify.is_clean() {
            return Err(SimError::InvalidPlan(format!(
                "distributed plan failed static verification: {}",
                dist_verify.messages().join("; ")
            )));
        }
        if let Some(identity) = &plan.identity {
            // D == 1 is the identity: this is exactly the single-device
            // path, byte for byte.
            let mut ex = PlanExecutor::new(self.group.primary().clone(), self.exec);
            return ex.run(identity, batch);
        }
        let reduced_plan = plan
            .reduced
            .as_ref()
            .expect("verified distributed plan has a reduced plan");

        // One worker thread per chunk: build the interior system, solve
        // it for the three right-hand sides, fold the solutions into
        // the chunk's two interface rows.
        let exec = self.exec;
        let group = &self.group;
        let joined: Vec<Result<ChunkRun<S>>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .chunks
                .iter()
                .map(|ch| {
                    let spec = group.devices()[ch.device_index].clone();
                    scope.spawn(move |_| -> Result<ChunkRun<S>> {
                        chunk_eliminate(spec, exec, ch, batch)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(SimError::KernelFault("chunk worker thread panicked".into()))
                    })
                })
                .collect()
        })
        .unwrap_or_else(|_| {
            vec![Err(SimError::KernelFault(
                "chunk worker thread panicked".into(),
            ))]
        });

        // First fault by device index wins (deterministic); the other
        // chunks' partial results are dropped here with `joined`.
        let mut runs: Vec<ChunkRun<S>> = Vec::with_capacity(joined.len());
        for (d, r) in joined.into_iter().enumerate() {
            match r {
                Ok(run) => runs.push(run),
                Err(SimError::KernelFault(msg)) => {
                    return Err(SimError::KernelFault(format!("chunk {d}: {msg}")))
                }
                Err(other) => return Err(other),
            }
        }

        // Assemble the reduced interface system on the host (it is
        // gathered to the primary device below, on the modeled
        // timeline) and solve it with the ordinary pipeline. Ordering:
        // (x_first_0, x_last_0, x_first_1, ...) — each interface row
        // couples only to its in-chunk partner and to the adjacent row
        // of the neighbouring chunk, so the system is tridiagonal.
        let rd_n = 2 * plan.chunks.len();
        let mut ra = vec![S::ZERO; rd_n];
        let mut rb = vec![S::ZERO; rd_n];
        let mut rc = vec![S::ZERO; rd_n];
        let mut rdv = vec![S::ZERO; rd_n];
        for (j, run) in runs.iter().enumerate() {
            let (fa, fb, fc, fd) = run.row_first;
            let (la, lb, lc, ld) = run.row_last;
            ra[2 * j] = fa;
            rb[2 * j] = fb;
            rc[2 * j] = fc;
            rdv[2 * j] = fd;
            ra[2 * j + 1] = la;
            rb[2 * j + 1] = lb;
            rc[2 * j + 1] = lc;
            rdv[2 * j + 1] = ld;
        }
        let reduced_sys = TridiagonalSystem::new(ra, rb, rc, rdv)
            .map_err(|e| SimError::InvalidPlan(format!("assembling reduced system: {e}")))?;
        let reduced_batch = SystemBatch::from_systems(vec![reduced_sys])
            .map_err(|e| SimError::InvalidPlan(format!("building reduced batch: {e}")))?;
        let mut red_ex = PlanExecutor::new(self.group.primary().clone(), self.exec);
        let (xr, red_report) = red_ex
            .run(reduced_plan, &reduced_batch)
            .map_err(|e| match e {
                SimError::KernelFault(msg) => {
                    SimError::KernelFault(format!("reduced interface solve: {msg}"))
                }
                other => other,
            })?;
        let reduced_flops: u64 = red_ex.stats.iter().map(|s| s.total.flops).sum();
        let reduced_transactions: u64 = red_ex
            .stats
            .iter()
            .map(|s| s.total.global_transactions())
            .sum();
        let reduced_bytes: u64 = red_ex.stats.iter().map(|s| s.total.global_bytes()).sum();

        // Distributed back substitution:
        //   x[first] = xr[2j], x[last] = xr[2j+1],
        //   x[interior t] = y[t] - u[t] * x[first] - w[t] * x[last].
        let mut out = vec![S::ZERO; batch.total_len()];
        let mut backsub_flops = 0u64;
        for (ch, run) in plan.chunks.iter().zip(&runs) {
            let j = ch.device_index;
            let xs = xr[2 * j];
            let xe = xr[2 * j + 1];
            out[batch.index(0, ch.row_start)] = xs;
            out[batch.index(0, ch.row_start + ch.row_count - 1)] = xe;
            for t in 0..ch.interior_len() {
                out[batch.index(0, ch.row_start + 1 + t)] =
                    run.y[t] - run.u[t] * xs - run.w[t] * xe;
            }
            backsub_flops += 4 * ch.interior_len() as u64;
        }

        // ---- modeled timeline -----------------------------------------
        // Replay each chunk's three interior runs onto its device's
        // in-order stream, then the interface gather (D2H), the reduced
        // solve on the primary, and the PCIe-serialized scatter (H2D)
        // followed by the back-substitution launch — the scatter
        // serialization is what makes device 0's back-substitution
        // overlap device D-1's interface wait.
        let eb = plan.elem_bytes;
        let gather_chunk_bytes = 8 * eb; // 2 interface rows x 4 coefficients
        let scatter_chunk_bytes = 2 * eb; // 2 interface values
        let rhs_tags = ["y", "u", "w"];
        let mut timeline = GroupTimeline::new(&self.group);
        for (ch, run) in plan.chunks.iter().zip(&runs) {
            let stream = timeline.stream_mut(ch.device_index);
            if let Some(ip) = &ch.interior {
                for (tag, report) in rhs_tags.iter().zip(&run.reports) {
                    let mut kernel_idx = 0usize;
                    for step in &ip.steps {
                        match step {
                            Step::Upload { slot, source } => {
                                let bytes = ip.buffers[*slot].elems * eb;
                                stream.record(
                                    StreamOp::CopyH2D,
                                    format!("h2d:{}#{tag}", source.label()),
                                    copy_us(bytes),
                                    bytes,
                                );
                            }
                            Step::Launch(ls) => {
                                let kr = report.kernels.get(kernel_idx).ok_or_else(|| {
                                    SimError::InvalidPlan(
                                        "chunk report is missing a kernel launch".into(),
                                    )
                                })?;
                                stream.record(StreamOp::Launch, ls.name, kr.timing.total_us, 0);
                                kernel_idx += 1;
                            }
                            Step::Download { slot } => {
                                let bytes = ip.buffers[*slot].elems * eb;
                                stream.record(
                                    StreamOp::CopyD2H,
                                    format!("d2h:{}#{tag}", ip.buffers[*slot].name),
                                    copy_us(bytes),
                                    bytes,
                                );
                            }
                            _ => {}
                        }
                    }
                }
            }
            stream.record(
                StreamOp::CopyD2H,
                "gather:interface",
                copy_us(gather_chunk_bytes),
                gather_chunk_bytes,
            );
        }
        // The reduced solve starts on the primary once every chunk's
        // interface rows have arrived.
        let gather_done = timeline
            .streams()
            .iter()
            .map(|s| s.completion_us())
            .fold(0.0f64, f64::max);
        {
            let s0 = timeline.stream_mut(0);
            s0.wait_until(gather_done);
            let mut kernel_idx = 0usize;
            for step in &reduced_plan.steps {
                match step {
                    Step::Upload { slot, source } => {
                        let bytes = reduced_plan.buffers[*slot].elems * eb;
                        s0.record(
                            StreamOp::CopyH2D,
                            format!("h2d:{}#reduced", source.label()),
                            copy_us(bytes),
                            bytes,
                        );
                    }
                    Step::Launch(ls) => {
                        let kr = red_report.kernels.get(kernel_idx).ok_or_else(|| {
                            SimError::InvalidPlan(
                                "reduced report is missing a kernel launch".into(),
                            )
                        })?;
                        s0.record(StreamOp::Launch, ls.name, kr.timing.total_us, 0);
                        kernel_idx += 1;
                    }
                    Step::Download { slot } => {
                        let bytes = reduced_plan.buffers[*slot].elems * eb;
                        s0.record(
                            StreamOp::CopyD2H,
                            format!("d2h:{}#reduced", reduced_plan.buffers[*slot].name),
                            copy_us(bytes),
                            bytes,
                        );
                    }
                    _ => {}
                }
            }
        }
        let reduced_done = timeline.streams()[0].completion_us();
        // Scatter the interface pairs back, serialized over one PCIe
        // bus in device order; each device then back-substitutes its
        // interior as soon as *its* pair lands.
        let mut host_cursor = reduced_done;
        for ch in &plan.chunks {
            let st = timeline.stream_mut(ch.device_index);
            st.wait_until(host_cursor);
            st.record(
                StreamOp::CopyH2D,
                "scatter:interface",
                copy_us(scatter_chunk_bytes),
                scatter_chunk_bytes,
            );
            host_cursor = st.completion_us();
        }
        let mut backsub_us = vec![0.0f64; plan.chunks.len()];
        for ch in &plan.chunks {
            if ch.interior_len() == 0 {
                continue;
            }
            let spec = &self.group.devices()[ch.device_index];
            // Streaming pass over y/u/w + the write of x: bandwidth-
            // bound at 4 elements per interior row, plus launch cost.
            let bytes = 4 * ch.interior_len() * eb;
            let dur = spec.launch_overhead_us + bytes as f64 / (spec.dram_bandwidth_gbps * 1e3);
            backsub_us[ch.device_index] = dur;
            timeline
                .stream_mut(ch.device_index)
                .record(StreamOp::Launch, "back_substitute", dur, 0);
        }
        let wall_clock = timeline.wall_clock_us();
        let kernel_wall = timeline.kernel_wall_clock_us();
        let serialized = timeline.serialized_us();

        // ---- merged Chrome trace --------------------------------------
        let mut trace = Trace::new(format!(
            "tridiag distributed solve on {}",
            self.group.label()
        ));
        trace.span(
            "distributed_solve",
            "solver",
            0,
            0.0,
            wall_clock,
            vec![
                ("n".into(), Json::num(plan.n as f64)),
                ("precision".into(), Json::str(plan.precision)),
                ("devices".into(), Json::num(plan.chunks.len() as f64)),
                ("kernel_wall_us".into(), Json::num(kernel_wall)),
                ("serialized_us".into(), Json::num(serialized)),
            ],
        );
        trace.instant(
            "partition",
            "solver",
            0,
            0.0,
            vec![
                ("devices".into(), Json::num(plan.chunks.len() as f64)),
                (
                    "chunks".into(),
                    Json::str(
                        plan.chunks
                            .iter()
                            .map(|c| format!("{}:{}", c.device_index, c.row_count))
                            .collect::<Vec<_>>()
                            .join("+"),
                    ),
                ),
            ],
        );
        trace.instant(
            "reduced_system",
            "solver",
            0,
            0.0,
            vec![
                ("n".into(), Json::num(reduced_plan.n as f64)),
                ("device".into(), Json::str(reduced_plan.device)),
                ("k".into(), Json::num(reduced_plan.k)),
            ],
        );
        for (ch, run) in plan.chunks.iter().zip(&runs) {
            let tid = ch.device_index as u32;
            let stream = &timeline.streams()[ch.device_index];
            // Device d's launch sequence on its stream: the three
            // interior runs' kernels in order, then (device 0 only) the
            // reduced kernels, then the back_substitute launch, which
            // has no KernelReport and is emitted by name.
            let mut kernels: Vec<_> = run
                .reports
                .iter()
                .flat_map(|r| r.kernels.iter())
                .collect();
            if ch.device_index == 0 {
                kernels.extend(red_report.kernels.iter());
            }
            let mut kernels = kernels.into_iter();
            for ev in &stream.events {
                match ev.op {
                    StreamOp::CopyH2D | StreamOp::CopyD2H => {
                        trace.span(
                            ev.name.clone(),
                            "copy",
                            tid,
                            ev.start_us,
                            ev.dur_us,
                            vec![("bytes".into(), Json::num(ev.bytes as f64))],
                        );
                    }
                    StreamOp::Launch if ev.name == "back_substitute" => {
                        trace.span(
                            "kernel:back_substitute",
                            "kernel",
                            tid,
                            ev.start_us,
                            ev.dur_us,
                            vec![(
                                "interior_rows".into(),
                                Json::num(ch.interior_len() as f64),
                            )],
                        );
                    }
                    StreamOp::Launch => {
                        let kr = kernels.next().expect("one report per launch event");
                        let t = &kr.timing;
                        trace.span(
                            format!("kernel:{}", t.name),
                            "kernel",
                            tid,
                            ev.start_us,
                            t.total_us,
                            vec![
                                ("blocks".into(), Json::num(kr.blocks as f64)),
                                ("bound".into(), Json::str(format!("{:?}", t.bound))),
                                ("occupancy".into(), Json::num(t.occupancy_fraction)),
                                ("waves".into(), Json::num(t.waves)),
                            ],
                        );
                        trace.span(
                            "launch_overhead",
                            "kernel",
                            tid,
                            ev.start_us,
                            t.launch_us,
                            Vec::new(),
                        );
                        let mut at = ev.start_us + t.launch_us;
                        for ph in &t.phases {
                            trace.span(
                                format!("phase:{}", ph.label),
                                "phase",
                                tid,
                                at,
                                ph.us,
                                vec![
                                    ("bound".into(), Json::str(format!("{:?}", ph.bound))),
                                    ("flops".into(), Json::num(ph.stats.flops as f64)),
                                    (
                                        "global_bytes".into(),
                                        Json::num(ph.stats.global_bytes() as f64),
                                    ),
                                    (
                                        "transactions".into(),
                                        Json::num(ph.stats.global_transactions() as f64),
                                    ),
                                ],
                            );
                            at += ph.us;
                        }
                    }
                }
            }
        }

        // ---- merged report --------------------------------------------
        let mut kernels = Vec::new();
        let mut violations = Vec::new();
        let mut lints = Vec::new();
        let mut lint_mismatches = Vec::new();
        let mut phase_sum_mismatches = Vec::new();
        let mut verify_mismatches = Vec::new();
        let mut summaries = Vec::with_capacity(runs.len());
        for (ch, run) in plan.chunks.iter().zip(&runs) {
            let d = ch.device_index;
            let kernel_us: f64 = run.reports.iter().map(|r| r.total_us).sum::<f64>()
                + backsub_us[d];
            summaries.push(ShardSummary {
                device: ch.device,
                device_index: d,
                sys_start: ch.row_start,
                sys_count: ch.row_count,
                k: ch.interior.as_ref().map_or(0, |p| p.k),
                kernel_us,
                completion_us: timeline.streams()[d].completion_us(),
                flops: run.flops + 4 * ch.interior_len() as u64,
                global_transactions: run.global_transactions,
                global_bytes: run.global_bytes,
            });
            for r in &run.reports {
                kernels.extend(r.kernels.iter().cloned());
                violations.extend(r.violations.iter().cloned());
                lints.extend(r.lints.iter().cloned());
                lint_mismatches.extend(r.lint_mismatches.iter().map(|s| format!("dev{d}: {s}")));
                phase_sum_mismatches
                    .extend(r.phase_sum_mismatches.iter().map(|s| format!("dev{d}: {s}")));
                verify_mismatches
                    .extend(r.verify_mismatches.iter().map(|s| format!("dev{d}: {s}")));
            }
        }
        kernels.extend(red_report.kernels.iter().cloned());
        violations.extend(red_report.violations.iter().cloned());
        lints.extend(red_report.lints.iter().cloned());
        lint_mismatches.extend(
            red_report
                .lint_mismatches
                .iter()
                .map(|s| format!("reduced: {s}")),
        );
        phase_sum_mismatches.extend(
            red_report
                .phase_sum_mismatches
                .iter()
                .map(|s| format!("reduced: {s}")),
        );
        verify_mismatches.extend(
            red_report
                .verify_mismatches
                .iter()
                .map(|s| format!("reduced: {s}")),
        );
        let report = GpuSolveReport {
            k: reduced_plan.k,
            mapping: reduced_plan.mapping,
            fused: reduced_plan.fused,
            kernels,
            total_us: kernel_wall,
            precision: reduced_plan.precision,
            violations,
            lints,
            lint_mismatches,
            phase_sum_mismatches,
            // The merged report carries the reduced plan (the one the
            // primary device actually ran); per-chunk certificates are
            // re-checked by verify_distributed_plan above.
            verify: crate::verify::verify_plan(self.group.primary(), reduced_plan),
            verify_mismatches,
            trace,
            plan: reduced_plan.clone(),
            shards: summaries,
            distributed: Some(DistributedSummary {
                devices: plan.chunks.len(),
                reduced_n: rd_n,
                reduced_k: reduced_plan.k,
                reduced_flops,
                reduced_transactions,
                reduced_bytes,
                backsub_flops,
                gather_bytes: (plan.chunks.len() * gather_chunk_bytes) as u64,
                scatter_bytes: (plan.chunks.len() * scatter_chunk_bytes) as u64,
                wall_clock_us: wall_clock,
                serialized_us: serialized,
            }),
        };
        Ok((out, report))
    }
}

/// One chunk's partial elimination, run on its own thread: solve the
/// interior system for the three right-hand sides and fold the
/// solutions into the chunk's two interface rows.
fn chunk_eliminate<S: GpuScalar>(
    spec: gpu_sim::DeviceSpec,
    exec: ExecConfig,
    ch: &ChunkPlan,
    batch: &SystemBatch<S>,
) -> Result<ChunkRun<S>> {
    let s = ch.row_start;
    let e = ch.row_start + ch.row_count - 1;
    let (a_s, b_s, c_s, d_s) = batch.row(0, s);
    let (a_e, b_e, c_e, d_e) = batch.row(0, e);
    let li = ch.interior_len();
    if li == 0 {
        // All-interface chunk: the two rows pass through unchanged —
        // x_first and x_last are adjacent in the reduced ordering, so
        // c_s couples x_first to x_last and a_e couples back.
        return Ok(ChunkRun {
            y: Vec::new(),
            u: Vec::new(),
            w: Vec::new(),
            row_first: (a_s, b_s, c_s, d_s),
            row_last: (a_e, b_e, c_e, d_e),
            reports: Vec::new(),
            flops: 0,
            global_transactions: 0,
            global_bytes: 0,
        });
    }
    let ip = ch
        .interior
        .as_ref()
        .expect("chunk with interior rows has an interior plan");
    // Interior rows s+1 ..= e-1. The couplings to the interface pair
    // (a_{s+1} on the first interior row, c_{e-1} on the last) move to
    // the right-hand side as the unit-load RHS u and w;
    // TridiagonalSystem::new zeroes lower[0] and upper[n-1], which is
    // exactly that decoupling.
    let mut lower = Vec::with_capacity(li);
    let mut diag = Vec::with_capacity(li);
    let mut upper = Vec::with_capacity(li);
    let mut rhs_y = Vec::with_capacity(li);
    for t in 0..li {
        let (a, b, c, d) = batch.row(0, s + 1 + t);
        lower.push(a);
        diag.push(b);
        upper.push(c);
        rhs_y.push(d);
    }
    let a_first = lower[0];
    let c_last = upper[li - 1];
    let mut rhs_u = vec![S::ZERO; li];
    rhs_u[0] = a_first;
    let mut rhs_w = vec![S::ZERO; li];
    rhs_w[li - 1] = c_last;

    let mut ex = PlanExecutor::new(spec, exec);
    let mut solve_one = |rhs: Vec<S>| -> Result<(Vec<S>, GpuSolveReport)> {
        let sys = TridiagonalSystem::new(lower.clone(), diag.clone(), upper.clone(), rhs)
            .map_err(|e| SimError::InvalidPlan(format!("building interior system: {e}")))?;
        let sub = SystemBatch::from_systems(vec![sys])
            .map_err(|e| SimError::InvalidPlan(format!("building interior batch: {e}")))?;
        ex.run(ip, &sub)
    };
    let (y, r_y) = solve_one(rhs_y)?;
    let (u, r_u) = solve_one(rhs_u)?;
    let (w, r_w) = solve_one(rhs_w)?;

    // Fold the interior solutions into the interface rows:
    //   x_{s+1} = y[0]    - u[0]    x_s - w[0]    x_e
    //   x_{e-1} = y[li-1] - u[li-1] x_s - w[li-1] x_e
    // substituted into rows s and e of the original system.
    let row_first = (
        a_s,
        b_s - c_s * u[0],
        -(c_s * w[0]),
        d_s - c_s * y[0],
    );
    let row_last = (
        -(a_e * u[li - 1]),
        b_e - a_e * w[li - 1],
        c_e,
        d_e - a_e * y[li - 1],
    );
    Ok(ChunkRun {
        y,
        u,
        w,
        row_first,
        row_last,
        reports: vec![r_y, r_u, r_w],
        flops: ex.stats.iter().map(|st| st.total.flops).sum(),
        global_transactions: ex
            .stats
            .iter()
            .map(|st| st.total.global_transactions())
            .sum(),
        global_bytes: ex.stats.iter().map(|st| st.total.global_bytes()).sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::GpuTridiagSolver;
    use gpu_sim::DeviceSpec;
    use tridiag_core::generators::random_batch;

    fn group_of(d: usize) -> DeviceGroup {
        DeviceGroup::homogeneous(DeviceSpec::gtx480(), d).unwrap()
    }

    #[test]
    fn partition_rows_covers_and_balances() {
        let parts = partition_rows(10, 3).unwrap();
        assert_eq!(parts, vec![(0, 4), (4, 3), (7, 3)]);
        let total: usize = parts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 10);
        assert!(partition_rows(5, 3).is_err(), "n < 2D must be rejected");
        assert!(partition_rows(0, 2).is_err());
        assert!(partition_rows(8, 0).is_err());
    }

    #[test]
    fn single_device_group_is_the_identity_path() {
        let batch = random_batch::<f64>(1, 64, 7);
        let solver = GpuTridiagSolver::gtx480();
        let (x1, r1) = solver.solve_batch(&batch).unwrap();
        let group = DeviceGroup::single(DeviceSpec::gtx480());
        let plan =
            DistributedPlan::build(&group, &GpuSolverConfig::default(), 64, 8).unwrap();
        assert!(plan.identity.is_some());
        assert!(plan.chunks.is_empty() && plan.reduced.is_none());
        let (x2, r2) = DistributedExecutor::new(group, ExecConfig::default())
            .run(&plan, &batch)
            .unwrap();
        assert_eq!(x1, x2, "D == 1 must be bit-identical");
        assert_eq!(r1, r2, "D == 1 must be byte-identical, report and all");
    }

    #[test]
    fn distributed_solve_matches_single_device_within_tolerance() {
        let batch = random_batch::<f64>(1, 256, 11);
        let solver = GpuTridiagSolver::gtx480();
        let (x1, _) = solver.solve_batch(&batch).unwrap();
        for d in [2usize, 4] {
            let group = group_of(d);
            let plan =
                DistributedPlan::build(&group, &GpuSolverConfig::default(), 256, 8).unwrap();
            let (x2, r2) = DistributedExecutor::new(group, ExecConfig::default())
                .run(&plan, &batch)
                .unwrap();
            let worst = x1
                .iter()
                .zip(&x2)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(
                worst < 1e-9,
                "D = {d}: max abs deviation {worst} vs single device"
            );
            let dist = r2.distributed.as_ref().expect("distributed summary");
            assert_eq!(dist.devices, d);
            assert_eq!(dist.reduced_n, 2 * d);
            assert!(batch.max_relative_residual(&x2).unwrap() < 1e-9);
        }
    }

    #[test]
    fn two_row_chunks_are_interface_only() {
        // n = 2D: every chunk is all interface, no interior plans.
        let group = group_of(4);
        let plan = DistributedPlan::build(&group, &GpuSolverConfig::default(), 8, 8).unwrap();
        assert!(plan.chunks.iter().all(|c| c.interior.is_none()));
        let batch = random_batch::<f64>(1, 8, 13);
        let solver = GpuTridiagSolver::gtx480();
        let (x1, _) = solver.solve_batch(&batch).unwrap();
        let (x2, _) = DistributedExecutor::new(group, ExecConfig::default())
            .run(&plan, &batch)
            .unwrap();
        let worst = x1
            .iter()
            .zip(&x2)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 1e-9, "max abs deviation {worst}");
    }

    #[test]
    fn geometry_mismatch_is_a_typed_error() {
        let group = group_of(2);
        let plan =
            DistributedPlan::build(&group, &GpuSolverConfig::default(), 64, 8).unwrap();
        let wrong = random_batch::<f64>(1, 32, 17);
        let err = DistributedExecutor::new(group.clone(), ExecConfig::default())
            .run(&plan, &wrong)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidPlan(_)), "{err:?}");
        let multi = random_batch::<f64>(2, 64, 17);
        let err = DistributedExecutor::new(group, ExecConfig::default())
            .run(&plan, &multi)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidPlan(_)), "{err:?}");
        // Plan built for 2 devices, executor driving 4.
        let plan2 = DistributedPlan::build(
            &group_of(2),
            &GpuSolverConfig::default(),
            64,
            8,
        )
        .unwrap();
        let err = DistributedExecutor::new(group_of(4), ExecConfig::default())
            .run(&plan2, &random_batch::<f64>(1, 64, 17))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidPlan(_)), "{err:?}");
    }

    #[test]
    fn plan_json_round_trips_through_the_validator() {
        for d in [1usize, 2, 4] {
            let group = group_of(d);
            let plan =
                DistributedPlan::build(&group, &GpuSolverConfig::default(), 128, 8).unwrap();
            let doc = gpu_sim::json::parse(&plan.to_json().to_string()).unwrap();
            let problems = validate_distributed_plan_json(&doc);
            assert!(problems.is_empty(), "D = {d}: {problems:?}");
        }
    }

    #[test]
    fn scatter_is_pcie_serialized_and_backsub_overlaps() {
        let group = group_of(4);
        let plan =
            DistributedPlan::build(&group, &GpuSolverConfig::default(), 1 << 12, 8).unwrap();
        let batch = random_batch::<f64>(1, 1 << 12, 19);
        let (_, r) = DistributedExecutor::new(group, ExecConfig::default())
            .run(&plan, &batch)
            .unwrap();
        // Device 0 finishes its back-substitution before the last
        // device: its scatter lands first on the serialized bus, so
        // its back-sub overlaps the others' interface waits.
        let first = r.shards.first().unwrap().completion_us;
        let last = r.shards.last().unwrap().completion_us;
        assert!(
            first < last,
            "pipelined back-substitution: dev0 done at {first}, dev3 at {last}"
        );
    }
}
