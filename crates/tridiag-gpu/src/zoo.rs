//! The kernel zoo: every shipped kernel at several launch geometries,
//! run under plan recording and statically linted.
//!
//! This is the harness behind `tridiag --lint` and the static-vs-
//! dynamic golden-counter cross-check: each entry launches one kernel
//! configuration with [`ExecConfig::planned`], records its affine
//! access plan, runs the five lint passes over it, and compares the
//! predicted counters field-by-field against the measured
//! [`KernelStats`]. A shipped kernel must produce **zero diagnostics**
//! and **zero cross-check mismatches** at every geometry here — the
//! zoo is the executable statement of that contract.

use crate::buffers::{upload, GpuScalar};
use crate::executor::PlanExecutor;
use crate::kernels::cr_shared::CrSharedKernel;
use crate::kernels::fused::FusedKernel;
use crate::kernels::p_thomas::{AddrMap, PThomasKernel};
use crate::kernels::pcr_shared::PcrSharedKernel;
use crate::kernels::tiled_pcr::TiledPcrKernel;
use gpu_sim::{
    BlockKernel, DeviceGroup, DeviceSpec, ExecConfig, GpuMemory, KernelStats, KernelTiming,
    LaunchConfig, LintReport, Result, SimError,
};
use tridiag_core::generators::random_batch;
use tridiag_core::Layout;

/// One zoo run: a kernel at one geometry, with its static lint report,
/// measured counters, and the static-vs-dynamic mismatch lines.
#[derive(Debug, Clone)]
pub struct ZooEntry {
    /// Kernel name (the launch config's name).
    pub kernel: &'static str,
    /// Human-readable geometry description.
    pub geometry: String,
    /// Static analysis of the recorded access plan.
    pub report: LintReport,
    /// Dynamically measured counters from the same launch.
    pub stats: KernelStats,
    /// Counters where the static prediction disagrees with the dynamic
    /// measurement (empty = exact agreement on all nine counters).
    pub mismatches: Vec<String>,
    /// Modeled timing for the launch, including per-phase attribution.
    pub timing: KernelTiming,
}

impl ZooEntry {
    /// `true` when the entry has no diagnostics and no counter
    /// mismatches.
    pub fn is_clean(&self) -> bool {
        self.report.is_clean() && self.mismatches.is_empty()
    }
}

fn run_entry<S: GpuScalar, K: BlockKernel<S>>(
    spec: &DeviceSpec,
    geometry: String,
    cfg: &LaunchConfig,
    kernel: &K,
    mem: &mut GpuMemory<S>,
) -> Result<ZooEntry> {
    // One launch through the shared plan executor: it owns the lint,
    // cross-check and timing bookkeeping the zoo used to duplicate.
    let mut ex = PlanExecutor::new(spec.clone(), ExecConfig::planned());
    ex.launch(cfg, kernel, mem)?;
    let report = ex.take_last_lint()?;
    let (kernel_report, stats) = ex.take_last_launch()?;
    let mismatches = std::mem::take(&mut ex.lint_mismatches);
    Ok(ZooEntry {
        kernel: report.kernel,
        geometry,
        report,
        stats,
        mismatches,
        timing: kernel_report.timing,
    })
}

fn pcr_shared_entries(spec: &DeviceSpec, out: &mut Vec<ZooEntry>) -> Result<()> {
    for (m, n, steps) in [(4usize, 128usize, None), (2, 64, None), (1, 256, Some(2u32))] {
        let host = random_batch::<f64>(m, n, 41);
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        let kernel = PcrSharedKernel {
            input: [dev.a, dev.b, dev.c, dev.d],
            x: dev.x,
            n,
            steps,
        };
        let threads = (n as u32).min(256);
        let cfg = LaunchConfig::new("pcr_shared", m, threads);
        let steps_txt = steps.map_or("full".into(), |s| s.to_string());
        out.push(run_entry(
            spec,
            format!("m={m} n={n} steps={steps_txt} t={threads} f64"),
            &cfg,
            &kernel,
            &mut mem,
        )?);
    }
    Ok(())
}

fn cr_shared_entries(spec: &DeviceSpec, out: &mut Vec<ZooEntry>) -> Result<()> {
    for (m, n) in [(2usize, 256usize), (1, 64), (4, 128)] {
        let host = random_batch::<f64>(m, n, 43);
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        let kernel = CrSharedKernel {
            input: [dev.a, dev.b, dev.c, dev.d],
            x: dev.x,
            n,
            padded: true,
        };
        let threads = (n as u32 / 2).clamp(32, 512);
        let cfg = LaunchConfig::new("cr_shared", m, threads);
        out.push(run_entry(
            spec,
            format!("m={m} n={n} t={threads} padded f64"),
            &cfg,
            &kernel,
            &mut mem,
        )?);
    }
    Ok(())
}

fn tiled_pcr_entries(spec: &DeviceSpec, out: &mut Vec<ZooEntry>) -> Result<()> {
    for (m, n, k, c) in [(3usize, 100usize, 3u32, 2usize), (1, 64, 2, 1), (2, 96, 4, 1)] {
        let host = random_batch::<f64>(m, n, 47);
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        let outb = [
            mem.alloc(m * n),
            mem.alloc(m * n),
            mem.alloc(m * n),
            mem.alloc(m * n),
        ];
        let assignments = TiledPcrKernel::assign_block_per_system(m, n);
        let blocks = assignments.len();
        let kernel = TiledPcrKernel {
            input: [dev.a, dev.b, dev.c, dev.d],
            output: outb,
            n,
            k,
            sub_tile: c << k,
            assignments,
        };
        let cfg = LaunchConfig::new("tiled_pcr", blocks, 1 << k);
        out.push(run_entry(
            spec,
            format!("m={m} n={n} k={k} c={c} (11a) f64"),
            &cfg,
            &kernel,
            &mut mem,
        )?);
    }
    Ok(())
}

fn window_multi_slot_entries(spec: &DeviceSpec, out: &mut Vec<ZooEntry>) -> Result<()> {
    for (m, n, k, q) in [(6usize, 96usize, 2u32, 3usize), (4, 64, 2, 2), (5, 80, 3, 2)] {
        let host = random_batch::<f32>(m, n, 61);
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        let outb = [
            mem.alloc(m * n),
            mem.alloc(m * n),
            mem.alloc(m * n),
            mem.alloc(m * n),
        ];
        let assignments = TiledPcrKernel::assign_multi_system_per_block(m, n, q);
        let blocks = assignments.len();
        let kernel = TiledPcrKernel {
            input: [dev.a, dev.b, dev.c, dev.d],
            output: outb,
            n,
            k,
            sub_tile: 2 << k,
            assignments,
        };
        let cfg = LaunchConfig::new("window_multi_slot", blocks, (q as u32) << k);
        out.push(run_entry(
            spec,
            format!("m={m} n={n} k={k} q={q} (11c) f32"),
            &cfg,
            &kernel,
            &mut mem,
        )?);
    }
    Ok(())
}

fn p_thomas_entries(spec: &DeviceSpec, out: &mut Vec<ZooEntry>) -> Result<()> {
    for (m, n) in [(64usize, 64usize), (37, 50), (128, 32)] {
        let host = random_batch::<f64>(m, n, 53).to_layout(Layout::Interleaved);
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        let cp = mem.alloc(dev.total());
        let dp = mem.alloc(dev.total());
        let kernel = PThomasKernel {
            a: dev.a,
            b: dev.b,
            c: dev.c,
            d: dev.d,
            c_prime: cp,
            d_prime: dp,
            x: dev.x,
            map: AddrMap::Interleaved { m, n },
        };
        let cfg = LaunchConfig::new("p_thomas", m.div_ceil(32), 32);
        out.push(run_entry(
            spec,
            format!("m={m} n={n} interleaved f64"),
            &cfg,
            &kernel,
            &mut mem,
        )?);
    }
    Ok(())
}

fn fused_entries(spec: &DeviceSpec, out: &mut Vec<ZooEntry>) -> Result<()> {
    for (m, n, k, c) in [(2usize, 200usize, 3u32, 2usize), (1, 64, 2, 1), (3, 128, 4, 1)] {
        let host = random_batch::<f64>(m, n, 59);
        let mut mem = GpuMemory::new();
        let dev = upload(&mut mem, &host);
        let cp = mem.alloc(m * n);
        let dp = mem.alloc(m * n);
        let kernel = FusedKernel {
            input: [dev.a, dev.b, dev.c, dev.d],
            c_prime: cp,
            d_prime: dp,
            x: dev.x,
            n,
            k,
            sub_tile: c << k,
            m,
        };
        let cfg = LaunchConfig::new("fused", m, 1 << k);
        out.push(run_entry(
            spec,
            format!("m={m} n={n} k={k} c={c} f64"),
            &cfg,
            &kernel,
            &mut mem,
        )?);
    }
    Ok(())
}

/// The six per-kernel entry builders, in canonical zoo order.
type EntryBuilder = fn(&DeviceSpec, &mut Vec<ZooEntry>) -> Result<()>;
const BUILDERS: [EntryBuilder; 6] = [
    pcr_shared_entries,
    cr_shared_entries,
    tiled_pcr_entries,
    window_multi_slot_entries,
    p_thomas_entries,
    fused_entries,
];

/// Run all six kernels at three geometries each (18 entries) on `spec`.
///
/// The lint cross-check contract (zero diagnostics, zero mismatches)
/// is asserted for the GTX480 the kernels are tuned for; on other
/// specs the entries still run and report, but coalescing/bank
/// predictions are calibrated per device and may legitimately differ.
pub fn run_zoo_on(spec: &DeviceSpec) -> Result<Vec<ZooEntry>> {
    let mut out = Vec::with_capacity(18);
    for builder in BUILDERS {
        builder(spec, &mut out)?;
    }
    Ok(out)
}

/// Run all six kernels at three geometries each (18 entries) on the
/// default GTX480.
pub fn run_zoo() -> Result<Vec<ZooEntry>> {
    run_zoo_on(&DeviceSpec::gtx480())
}

/// Run the zoo sharded across a [`DeviceGroup`]: the six kernel
/// builders are partitioned contiguously (balanced within 1) over the
/// group's devices — devices beyond the sixth idle — and run
/// concurrently on scoped threads, each builder against its device's
/// spec. Entries come back flattened in canonical zoo order, so on a
/// homogeneous group the result is identical to [`run_zoo_on`] with
/// that spec. A worker panic surfaces as [`SimError::KernelFault`];
/// the first failing device (by index) wins.
pub fn run_zoo_group(group: &DeviceGroup) -> Result<Vec<ZooEntry>> {
    let workers = group.len().min(BUILDERS.len());
    let ranges = crate::plan::partition_systems(BUILDERS.len(), workers)?;
    let joined: Vec<Result<Vec<ZooEntry>>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(d, &(start, count))| {
                let spec = group.devices()[d].clone();
                scope.spawn(move |_| -> Result<Vec<ZooEntry>> {
                    let mut out = Vec::new();
                    for builder in &BUILDERS[start..start + count] {
                        builder(&spec, &mut out)?;
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(SimError::KernelFault("zoo worker thread panicked".into()))
                })
            })
            .collect()
    })
    .unwrap_or_else(|_| vec![Err(SimError::KernelFault("zoo worker thread panicked".into()))]);
    let mut out = Vec::with_capacity(18);
    for (d, r) in joined.into_iter().enumerate() {
        match r {
            Ok(entries) => out.extend(entries),
            Err(SimError::KernelFault(msg)) => {
                return Err(SimError::KernelFault(format!("device {d}: {msg}")))
            }
            Err(other) => return Err(other),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_covers_six_kernels_at_three_geometries() {
        let entries = run_zoo().unwrap();
        assert_eq!(entries.len(), 18);
        for name in [
            "pcr_shared",
            "cr_shared",
            "tiled_pcr",
            "window_multi_slot",
            "p_thomas",
            "fused",
        ] {
            assert_eq!(
                entries.iter().filter(|e| e.kernel == name).count(),
                3,
                "{name} geometries"
            );
        }
    }

    #[test]
    fn sharded_zoo_matches_the_single_device_zoo() {
        let solo = run_zoo().unwrap();
        let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), 3).unwrap();
        let sharded = run_zoo_group(&group).unwrap();
        assert_eq!(sharded.len(), solo.len());
        for (a, b) in solo.iter().zip(&sharded) {
            assert_eq!(a.kernel, b.kernel);
            assert_eq!(a.geometry, b.geometry);
            assert_eq!(a.stats.total, b.stats.total, "{} {}", a.kernel, a.geometry);
            assert_eq!(a.timing.total_us, b.timing.total_us);
            assert_eq!(a.is_clean(), b.is_clean());
        }
        // More devices than builders: the extras idle, result unchanged.
        let wide = DeviceGroup::homogeneous(DeviceSpec::gtx480(), 8).unwrap();
        assert_eq!(run_zoo_group(&wide).unwrap().len(), solo.len());
    }
}
