//! # tridiag-gpu
//!
//! The paper's GPU tridiagonal solver — hybrid tiled PCR + p-Thomas —
//! implemented as kernels on the [`gpu_sim`] functional simulator, plus
//! the Davidson et al. and Zhang et al. baselines it is compared against
//! (Sections III and V of the paper).

#![warn(missing_docs)]

// Kernels index parallel coefficient arrays (`a, b, c, d`) by a small
// integer `arr`; iterator rewrites of those loops obscure the SIMT
// structure the code deliberately mirrors.
#![allow(clippy::needless_range_loop)]

pub mod autotune;
pub mod buffers;
pub mod consts;
pub mod davidson;
pub mod distributed;
pub mod executor;
pub mod hash;
pub mod kernels;
pub mod plan;
pub mod sharded;
pub mod solver;
pub mod verify;
pub mod zhang;
pub mod zoo;

pub use buffers::{download_solution, upload, DeviceBatch, GpuScalar};
pub use distributed::{
    partition_rows, validate_distributed_plan_json, ChunkPlan, DistributedExecutor,
    DistributedPlan,
};
pub use executor::PlanExecutor;
pub use hash::solution_hash;
pub use plan::{
    partition_systems, validate_plan_json, validate_sharded_plan_json, ShardPlan, ShardedPlan,
    SolvePlan, Step,
};
pub use sharded::ShardedExecutor;
pub use solver::{
    CostModel, DistributedSummary, GpuSolveReport, GpuSolverConfig, GpuTridiagSolver,
    LayoutChoice, MappingVariant, ShardSummary,
};
pub use verify::{
    verify_distributed_plan, verify_plan, verify_sharded_plan, DistributedVerifyReport,
    DynamicPlanStats, FindingKind, PlanFinding, PlanPrediction, ShardedVerifyReport,
    SlotLiveness, VerifyReport,
};
