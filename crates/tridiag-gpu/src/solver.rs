//! The end-to-end GPU solver: algorithm transition + kernel pipeline
//! (Section III).
//!
//! [`GpuTridiagSolver::solve_batch`] is the reproduction of the paper's
//! runtime, split into two pure halves:
//!
//! - **plan** ([`crate::plan::SolvePlan::build`]): pick the PCR step
//!   count `k` from `(M, hardware)` via the transition policy (Section
//!   III-D), resolve the Fig. 11 grid mapping, and lay out the full
//!   step sequence — `k = 0` runs p-Thomas directly on the interleaved
//!   batch (Table III's `M ≥ 1024` row); `k > 0` runs tiled PCR then
//!   p-Thomas over the `2^k·M` subsystems, or the fused single-kernel
//!   pipeline (Section III-C);
//! - **execute** ([`crate::executor::PlanExecutor::run`]): walk the
//!   plan, launch the kernels, and collect every artifact.
//!
//! The returned [`GpuSolveReport`] carries per-kernel modeled timings,
//! traffic summaries, occupancy, and the plan itself — everything the
//! figure harness prints.

use crate::buffers::GpuScalar;
use crate::consts::PTHOMAS_BLOCK;
use crate::executor::PlanExecutor;
use crate::plan::SolvePlan;
use gpu_sim::timing::TrafficSummary;
use gpu_sim::trace::Trace;
use gpu_sim::{
    BoundKind, DeviceSpec, ExecConfig, Json, KernelTiming, LintReport, PhaseTiming, Result,
    SanitizerViolation,
};
use tridiag_core::transition::TransitionPolicy;
use tridiag_core::SystemBatch;

/// How tiled-PCR work maps onto the grid (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingVariant {
    /// Pick automatically: partition lone large systems across block
    /// groups, otherwise one block per system.
    Auto,
    /// Fig. 11(a): one block per system.
    BlockPerSystem,
    /// Fig. 11(b): each system split across this many blocks.
    BlockGroupPerSystem(usize),
    /// Fig. 11(c): this many systems multiplexed per block.
    MultiSystemPerBlock(usize),
}

/// How the planner scores candidate `(layout, mapping, fused, k)`
/// tuples (see [`crate::plan::cost`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModel {
    /// The pre-cost-model decision procedure: `k` from the transition
    /// policy, layout implied by `k` (interleaved iff `k = 0`). Pinned
    /// byte-exactly by the golden plan snapshots.
    #[default]
    Legacy,
    /// Enumerate every candidate tuple and pick the argmin of the
    /// closed-form 128-byte-transaction + serialization + transfer
    /// estimate (deterministic tie-break: first candidate in
    /// enumeration order wins).
    Transactions,
}

/// Requested device-side memory layout for the coefficient buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LayoutChoice {
    /// Let the cost model pick.
    #[default]
    Auto,
    /// Force system-major buffers (the hybrid PCR + p-Thomas pipeline;
    /// with `k = 0` this is the uncoalesced strawman p-Thomas kept for
    /// the layout ablation bench).
    Contiguous,
    /// Force row-major-across-systems buffers: the pure coalesced
    /// p-Thomas path (`k` is forced to 0 — tiled PCR addresses
    /// contiguous systems).
    Interleaved,
}

impl LayoutChoice {
    /// The pin for an already-decided device layout (used by
    /// [`crate::plan::ShardedPlan::build`] and the service's
    /// per-geometry decision pinning).
    pub fn pin(layout: tridiag_core::Layout) -> Self {
        match layout {
            tridiag_core::Layout::Contiguous => LayoutChoice::Contiguous,
            tridiag_core::Layout::Interleaved => LayoutChoice::Interleaved,
        }
    }
}

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSolverConfig {
    /// Algorithm-transition policy (Section III-D).
    pub policy: TransitionPolicy,
    /// Sub-tile scale `c` (sub-tile = `c·2^k`).
    pub sub_tile_scale: usize,
    /// Fuse tiled PCR and p-Thomas into one kernel where the mapping
    /// allows (Section III-C).
    pub fused: bool,
    /// Grid mapping for the tiled PCR stage.
    pub mapping: MappingVariant,
    /// Cost model the planner prices candidate pipelines with.
    pub cost: CostModel,
    /// Device-side layout request (`Auto` lets the cost model pick).
    pub layout: LayoutChoice,
    /// p-Thomas threads per block.
    pub pthomas_block: u32,
    /// Execution options — set `exec.sanitize` to run every kernel in
    /// the pipeline under the memory/race sanitizer (compute-sanitizer
    /// analog); violations land in [`GpuSolveReport::violations`].
    pub exec: ExecConfig,
}

impl Default for GpuSolverConfig {
    fn default() -> Self {
        Self {
            policy: TransitionPolicy::default(),
            sub_tile_scale: 1,
            fused: false,
            mapping: MappingVariant::Auto,
            cost: CostModel::Legacy,
            layout: LayoutChoice::Auto,
            pthomas_block: PTHOMAS_BLOCK,
            exec: ExecConfig::default(),
        }
    }
}

/// One kernel's contribution to a solve.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// Modeled timing breakdown.
    pub timing: KernelTiming,
    /// Traffic/compute summary.
    pub traffic: TrafficSummary,
    /// Shared memory per block (bytes).
    pub shared_bytes: usize,
    /// Blocks launched.
    pub blocks: usize,
}

/// One device's contribution to a sharded solve (see
/// [`GpuSolveReport::shards`]). Counter fields hold the exact dynamic
/// totals summed over the shard's kernels — the partition-invariant
/// quantities the differential suite checks against the single-device
/// run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// Device name the shard ran on.
    pub device: &'static str,
    /// Index of the device in its group (= Chrome-trace track id).
    pub device_index: usize,
    /// First system (in the caller's batch) the shard owned.
    pub sys_start: usize,
    /// Number of systems the shard owned.
    pub sys_count: usize,
    /// PCR step count the shard's plan used (may be clamped below the
    /// reference `k` on a heterogeneous group).
    pub k: u32,
    /// Modeled kernel time on this device (µs, launch overheads
    /// included, copies excluded).
    pub kernel_us: f64,
    /// When this device's stream drained (µs), including the modeled
    /// H2D/D2H copies.
    pub completion_us: f64,
    /// Exact FLOPs executed by the shard's kernels.
    pub flops: u64,
    /// Exact global-memory transactions (loads + stores).
    pub global_transactions: u64,
    /// Exact global-memory bytes moved by kernels.
    pub global_bytes: u64,
}

/// Cross-device accounting for a distributed single-system solve (see
/// [`crate::distributed`]): the reduced interface system, the
/// back-substitution, and the PCIe interface exchanges — everything the
/// per-chunk [`ShardSummary`] entries do *not* cover.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedSummary {
    /// Number of devices (= chunks).
    pub devices: usize,
    /// Rows in the reduced interface system (`2 * devices`).
    pub reduced_n: usize,
    /// PCR step count the reduced plan used.
    pub reduced_k: u32,
    /// Exact FLOPs executed by the reduced solve's kernels.
    pub reduced_flops: u64,
    /// Exact global-memory transactions of the reduced solve.
    pub reduced_transactions: u64,
    /// Exact global-memory bytes moved by the reduced solve's kernels.
    pub reduced_bytes: u64,
    /// Host-side back-substitution FLOPs (4 per interior row).
    pub backsub_flops: u64,
    /// Bytes gathered to the primary over PCIe (2 interface rows x 4
    /// coefficients per chunk).
    pub gather_bytes: u64,
    /// Bytes scattered back over PCIe (2 interface values per chunk).
    pub scatter_bytes: u64,
    /// Modeled wall-clock (µs) including copies — the max over device
    /// streams.
    pub wall_clock_us: f64,
    /// Sum of every device stream's completion time (µs) — what a
    /// one-device-at-a-time execution would cost.
    pub serialized_us: f64,
}

/// Everything a solve did and cost.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSolveReport {
    /// PCR steps chosen by the transition policy (possibly clamped by
    /// shared memory).
    pub k: u32,
    /// Grid mapping actually used for the PCR stage.
    pub mapping: MappingVariant,
    /// Whether the fused pipeline ran.
    pub fused: bool,
    /// Per-kernel reports, in launch order.
    pub kernels: Vec<KernelReport>,
    /// Total modeled time (µs) — the sum of kernel times including one
    /// launch overhead each.
    pub total_us: f64,
    /// Scalar precision label (`"f32"` / `"f64"`).
    pub precision: &'static str,
    /// Sanitizer violation reports across every kernel in the pipeline
    /// (empty when the sanitizer is off or the run was clean).
    pub violations: Vec<SanitizerViolation>,
    /// Static lint reports, one per kernel launch (empty unless
    /// `exec.record_plan` is set).
    pub lints: Vec<LintReport>,
    /// Counters where a kernel's static prediction disagreed with its
    /// dynamic measurement (empty = exact agreement, or lint off).
    pub lint_mismatches: Vec<String>,
    /// Counters whose per-phase breakdown failed to sum exactly to the
    /// kernel total, prefixed with the kernel name (always checked;
    /// empty = the invariant held for every launch).
    pub phase_sum_mismatches: Vec<String>,
    /// Static plan verification (dataflow, layout pairing, liveness
    /// peak memory) the executor ran before launching anything. Always
    /// clean here — a plan with findings never executes. For sharded
    /// runs this is the reference plan's certificate on the primary
    /// device.
    pub verify: crate::verify::VerifyReport,
    /// Discrepancies between the verifier's [`crate::verify::PlanPrediction`]
    /// and the stats the run actually measured (empty = exact
    /// agreement). For sharded runs, per-shard messages prefixed
    /// `devN:`.
    pub verify_mismatches: Vec<String>,
    /// Span/event trace of the whole solve on the modeled-time axis:
    /// the transition-rule decision, mapping choice, buffer setup, and
    /// each kernel launch with its per-phase children. Export with
    /// [`gpu_sim::trace::Trace::to_chrome_json`].
    pub trace: Trace,
    /// The declarative plan the solve executed — the full step
    /// sequence with launch geometry and buffer bindings.
    pub plan: SolvePlan,
    /// Per-device summaries when the solve ran sharded across a
    /// [`gpu_sim::DeviceGroup`] (empty for a single-device solve). For
    /// sharded runs `total_us` is the **max** over these devices'
    /// `kernel_us` — devices run concurrently — and `kernels` holds
    /// every shard's launches in shard order.
    pub shards: Vec<ShardSummary>,
    /// Cross-device accounting when the solve split one system across
    /// a group (see [`crate::distributed::DistributedExecutor`]);
    /// `None` for single-device and sharded solves. When set, `shards`
    /// holds the per-chunk summaries (`sys_start`/`sys_count` are
    /// *rows*, not systems).
    pub distributed: Option<DistributedSummary>,
}

impl GpuSolveReport {
    /// `true` when the run produced no sanitizer reports (vacuously true
    /// with the sanitizer off).
    pub fn is_sanitizer_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// `true` when static analysis found no diagnostics and every
    /// predicted counter matched its dynamic measurement (vacuously
    /// true when plan recording is off).
    pub fn is_lint_clean(&self) -> bool {
        self.lints.iter().all(LintReport::is_clean) && self.lint_mismatches.is_empty()
    }

    /// Modeled time of the tiled PCR stage alone (0 when `k = 0`).
    pub fn pcr_us(&self) -> f64 {
        if self.fused || self.k == 0 {
            0.0
        } else {
            self.kernels.first().map(|k| k.timing.total_us).unwrap_or(0.0)
        }
    }

    /// `true` when every kernel's per-phase counters summed exactly to
    /// its totals (the attribution invariant).
    pub fn is_phase_sum_clean(&self) -> bool {
        self.phase_sum_mismatches.is_empty()
    }

    /// `true` when the plan verifier found nothing and its resource
    /// prediction matched the executed stats exactly.
    pub fn is_verify_clean(&self) -> bool {
        self.verify.is_clean() && self.verify_mismatches.is_empty()
    }

    /// Terminal profile: top phases by modeled time across the
    /// pipeline, a bound-kind histogram, and per-phase traffic/compute.
    pub fn profile_report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile [{}]: {:.1} us modeled, {} kernel launch(es), k = {}, {:?}{}",
            self.precision,
            self.total_us,
            self.kernels.len(),
            self.k,
            self.mapping,
            if self.fused { ", fused" } else { "" }
        );
        let mut rows: Vec<(String, &PhaseTiming)> = Vec::new();
        for kr in &self.kernels {
            for ph in &kr.timing.phases {
                rows.push((format!("{}/{}", kr.timing.name, ph.label), ph));
            }
        }
        rows.sort_by(|a, b| b.1.us.partial_cmp(&a.1.us).unwrap_or(std::cmp::Ordering::Equal));
        let body_us: f64 = self
            .kernels
            .iter()
            .map(|k| k.timing.total_us - k.timing.launch_us)
            .sum();
        let _ = writeln!(out, "top phases by modeled time:");
        for (i, (name, ph)) in rows.iter().enumerate().take(10) {
            let _ = writeln!(
                out,
                "  {:>2}. {:<28} {:>9.2} us ({:>4.1}%)  {:<9} {:>9.3} MiB {:>9.3} Mflop",
                i + 1,
                name,
                ph.us,
                if body_us > 0.0 { 100.0 * ph.us / body_us } else { 0.0 },
                format!("{:?}", ph.bound),
                ph.stats.global_bytes() as f64 / (1024.0 * 1024.0),
                ph.stats.flops as f64 / 1e6,
            );
        }
        let mut histo: Vec<(BoundKind, usize)> = Vec::new();
        for (_, ph) in &rows {
            match histo.iter_mut().find(|(b, _)| *b == ph.bound) {
                Some((_, n)) => *n += 1,
                None => histo.push((ph.bound, 1)),
            }
        }
        histo.sort_by_key(|h| std::cmp::Reverse(h.1));
        let histo_txt: Vec<String> = histo
            .iter()
            .map(|(b, n)| format!("{b:?} x{n}"))
            .collect();
        let launch_us: f64 = self.kernels.iter().map(|k| k.timing.launch_us).sum();
        let _ = writeln!(
            out,
            "phase bound kinds: {}; launch overhead {:.1} us across {} launch(es)",
            if histo_txt.is_empty() { "none".into() } else { histo_txt.join(", ") },
            launch_us,
            self.kernels.len()
        );
        if !self.phase_sum_mismatches.is_empty() {
            let _ = writeln!(out, "PHASE-SUM VIOLATIONS:");
            for m in &self.phase_sum_mismatches {
                let _ = writeln!(out, "  - {m}");
            }
        }
        out
    }

    /// Serialize the full report (timings, per-phase breakdowns,
    /// sanitizer/lint findings, the plan, and the trace) as a JSON
    /// object.
    pub fn to_json(&self) -> Json {
        let phase_json = |ph: &PhaseTiming| {
            Json::Obj(vec![
                ("label".into(), Json::str(ph.label)),
                ("us".into(), Json::num(ph.us)),
                ("compute_us".into(), Json::num(ph.compute_us)),
                ("bandwidth_us".into(), Json::num(ph.bandwidth_us)),
                ("latency_us".into(), Json::num(ph.latency_us)),
                ("bound".into(), Json::str(format!("{:?}", ph.bound))),
                ("flops".into(), Json::num(ph.stats.flops as f64)),
                ("global_bytes".into(), Json::num(ph.stats.global_bytes() as f64)),
                (
                    "global_transactions".into(),
                    Json::num(ph.stats.global_transactions() as f64),
                ),
                ("rounds".into(), Json::num(ph.stats.global_access_rounds as f64)),
                ("shared_accesses".into(), Json::num(ph.stats.shared_accesses as f64)),
                (
                    "bank_conflict_replays".into(),
                    Json::num(ph.stats.bank_conflict_replays as f64),
                ),
                ("barriers".into(), Json::num(ph.stats.barriers as f64)),
            ])
        };
        let kernels = self
            .kernels
            .iter()
            .map(|kr| {
                Json::Obj(vec![
                    ("name".into(), Json::str(kr.timing.name)),
                    ("blocks".into(), Json::num(kr.blocks as f64)),
                    ("shared_bytes".into(), Json::num(kr.shared_bytes as f64)),
                    ("total_us".into(), Json::num(kr.timing.total_us)),
                    ("launch_us".into(), Json::num(kr.timing.launch_us)),
                    ("compute_us".into(), Json::num(kr.timing.compute_us)),
                    ("bandwidth_us".into(), Json::num(kr.timing.bandwidth_us)),
                    ("latency_us".into(), Json::num(kr.timing.latency_us)),
                    ("bound".into(), Json::str(format!("{:?}", kr.timing.bound))),
                    ("waves".into(), Json::num(kr.timing.waves)),
                    ("occupancy".into(), Json::num(kr.timing.occupancy_fraction)),
                    ("traffic_mib".into(), Json::num(kr.traffic.traffic_mib)),
                    ("coalescing".into(), Json::num(kr.traffic.coalescing)),
                    ("mflops".into(), Json::num(kr.traffic.mflops)),
                    (
                        "phases".into(),
                        Json::Arr(kr.timing.phases.iter().map(phase_json).collect()),
                    ),
                ])
            })
            .collect();
        let strings = |v: &[String]| Json::Arr(v.iter().map(Json::str).collect());
        let trace = gpu_sim::json::parse(&self.trace.to_chrome_json())
            .expect("exporter emits valid JSON");
        let shards = self
            .shards
            .iter()
            .map(|sh| {
                Json::Obj(vec![
                    ("device".into(), Json::str(sh.device)),
                    ("device_index".into(), Json::num(sh.device_index as f64)),
                    ("sys_start".into(), Json::num(sh.sys_start as f64)),
                    ("sys_count".into(), Json::num(sh.sys_count as f64)),
                    ("k".into(), Json::num(sh.k)),
                    ("kernel_us".into(), Json::num(sh.kernel_us)),
                    ("completion_us".into(), Json::num(sh.completion_us)),
                    ("flops".into(), Json::num(sh.flops as f64)),
                    (
                        "global_transactions".into(),
                        Json::num(sh.global_transactions as f64),
                    ),
                    ("global_bytes".into(), Json::num(sh.global_bytes as f64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("k".into(), Json::num(self.k)),
            ("mapping".into(), Json::str(format!("{:?}", self.mapping))),
            ("fused".into(), Json::Bool(self.fused)),
            ("precision".into(), Json::str(self.precision)),
            ("total_us".into(), Json::num(self.total_us)),
            ("kernels".into(), Json::Arr(kernels)),
            (
                "violations".into(),
                Json::Arr(self.violations.iter().map(|v| Json::str(v.to_string())).collect()),
            ),
            (
                "lint_diagnostics".into(),
                Json::Arr(
                    self.lints
                        .iter()
                        .flat_map(|l| &l.diagnostics)
                        .map(|d| Json::str(d.to_string()))
                        .collect(),
                ),
            ),
            ("lint_mismatches".into(), strings(&self.lint_mismatches)),
            ("phase_sum_mismatches".into(), strings(&self.phase_sum_mismatches)),
            ("verify".into(), self.verify.to_json()),
            ("verify_mismatches".into(), strings(&self.verify_mismatches)),
            ("plan".into(), self.plan.to_json()),
            ("shards".into(), Json::Arr(shards)),
            (
                "distributed".into(),
                self.distributed.as_ref().map_or(Json::Null, |d| {
                    Json::Obj(vec![
                        ("devices".into(), Json::num(d.devices as f64)),
                        ("reduced_n".into(), Json::num(d.reduced_n as f64)),
                        ("reduced_k".into(), Json::num(d.reduced_k)),
                        ("reduced_flops".into(), Json::num(d.reduced_flops as f64)),
                        (
                            "reduced_transactions".into(),
                            Json::num(d.reduced_transactions as f64),
                        ),
                        ("reduced_bytes".into(), Json::num(d.reduced_bytes as f64)),
                        ("backsub_flops".into(), Json::num(d.backsub_flops as f64)),
                        ("gather_bytes".into(), Json::num(d.gather_bytes as f64)),
                        ("scatter_bytes".into(), Json::num(d.scatter_bytes as f64)),
                        ("wall_clock_us".into(), Json::num(d.wall_clock_us)),
                        ("serialized_us".into(), Json::num(d.serialized_us)),
                    ])
                }),
            ),
            ("trace".into(), trace),
        ])
    }
}

/// The solver: a device spec plus a configuration.
#[derive(Debug, Clone)]
pub struct GpuTridiagSolver {
    spec: DeviceSpec,
    config: GpuSolverConfig,
}

impl GpuTridiagSolver {
    /// Build a solver for `spec` with `config`.
    pub fn new(spec: DeviceSpec, config: GpuSolverConfig) -> Self {
        Self { spec, config }
    }

    /// GTX480 with the paper's defaults.
    pub fn gtx480() -> Self {
        Self::new(DeviceSpec::gtx480(), GpuSolverConfig::default())
    }

    /// The device spec in use.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Largest `k` whose window still fits this device's shared memory
    /// at scale `c` and element size `bytes`.
    pub fn max_k_for_shared(&self, c: usize, bytes: usize) -> u32 {
        crate::plan::max_k_for_shared(&self.spec, c, bytes)
    }

    /// Plan (but do not execute) a solve of `m` systems of `n` rows at
    /// `elem_bytes` scalar width — the dry-run entry point behind
    /// `tridiag plan` and `solve --dry-run`.
    pub fn plan_geometry(&self, m: usize, n: usize, elem_bytes: usize) -> Result<SolvePlan> {
        SolvePlan::build(&self.spec, &self.config, m, n, elem_bytes)
    }

    /// Solve every system in `batch` on the simulated device: build the
    /// plan, then run it through the executor. Returns the solutions in
    /// the batch's layout plus the solve report. A batch that already
    /// arrives in the chosen device layout plans with the
    /// `Convert`/`ConvertBack` steps elided (see
    /// [`SolvePlan::build_for_host`]).
    pub fn solve_batch<S: GpuScalar>(
        &self,
        batch: &SystemBatch<S>,
    ) -> Result<(Vec<S>, GpuSolveReport)> {
        let plan = SolvePlan::build_for_host(
            &self.spec,
            &self.config,
            batch.layout(),
            batch.num_systems(),
            batch.system_len(),
            <S as gpu_sim::Elem>::BYTES,
        )?;
        let mut executor = PlanExecutor::new(self.spec.clone(), self.config.exec);
        executor.run(&plan, batch)
    }

    /// Plan (but do not execute) a solve sharded across `group` — the
    /// dry-run entry point behind `plan --devices` and
    /// `solve --devices --dry-run`. The group's devices are
    /// authoritative; the solver's own spec is ignored.
    pub fn plan_geometry_group(
        &self,
        group: &gpu_sim::DeviceGroup,
        m: usize,
        n: usize,
        elem_bytes: usize,
    ) -> Result<crate::plan::ShardedPlan> {
        crate::plan::ShardedPlan::build(group, &self.config, m, n, elem_bytes)
    }

    /// Solve `batch` sharded across `group`: build the sharded plan,
    /// then run one executor per device on real threads and merge the
    /// per-shard artifacts (see [`crate::sharded::ShardedExecutor`]).
    /// On a homogeneous group the solutions are bit-identical to
    /// [`Self::solve_batch`]; a single-device group *is* the
    /// single-device path.
    pub fn solve_batch_group<S: GpuScalar>(
        &self,
        group: &gpu_sim::DeviceGroup,
        batch: &SystemBatch<S>,
    ) -> Result<(Vec<S>, GpuSolveReport)> {
        let plan = self.plan_geometry_group(
            group,
            batch.num_systems(),
            batch.system_len(),
            <S as gpu_sim::Elem>::BYTES,
        )?;
        crate::sharded::ShardedExecutor::new(group.clone(), self.config.exec).run(&plan, batch)
    }

    /// Plan (but do not execute) a distributed solve of one `n`-row
    /// system split across `group` — the dry-run entry point behind
    /// `plan --split-n` and `solve --split-n --dry-run`. The group's
    /// devices are authoritative; the solver's own spec is ignored.
    pub fn plan_geometry_split(
        &self,
        group: &gpu_sim::DeviceGroup,
        n: usize,
        elem_bytes: usize,
    ) -> Result<crate::distributed::DistributedPlan> {
        crate::distributed::DistributedPlan::build(group, &self.config, n, elem_bytes)
    }

    /// Solve one system split by rows across `group`: per-device
    /// partial elimination, the reduced interface solve on the primary,
    /// distributed back substitution (see
    /// [`crate::distributed::DistributedExecutor`]). `batch` must hold
    /// exactly one system. A single-device group *is* the single-device
    /// path, bit for bit; `D >= 2` matches it to a condition-derived
    /// tolerance (DESIGN.md §15).
    pub fn solve_batch_split<S: GpuScalar + Send + Sync>(
        &self,
        group: &gpu_sim::DeviceGroup,
        batch: &SystemBatch<S>,
    ) -> Result<(Vec<S>, GpuSolveReport)> {
        let plan = self.plan_geometry_split(
            group,
            batch.system_len(),
            <S as gpu_sim::Elem>::BYTES,
        )?;
        crate::distributed::DistributedExecutor::new(group.clone(), self.config.exec)
            .run(&plan, batch)
    }
}

/// Convenience: solve with defaults on a GTX480; returns the solution
/// in the batch's layout.
pub fn solve_batch_gtx480<S: GpuScalar>(
    batch: &SystemBatch<S>,
) -> Result<(Vec<S>, GpuSolveReport)> {
    GpuTridiagSolver::gtx480().solve_batch(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::generators::random_batch;
    use tridiag_core::verify;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
    fn solves_across_the_table3_regimes() {
        // (m, n) pairs spanning every Table III row (k = 8, 7, 6, 5, 0),
        // sizes kept moderate for test speed.
        for (m, n) in [(1usize, 2048usize), (16, 1024), (64, 512), (600, 256), (1100, 64)] {
            let batch = random_batch::<f64>(m, n, 7 + m as u64);
            let (x, report) = solve_batch_gtx480(&batch).unwrap();
            let resid = batch.max_relative_residual(&x).unwrap();
            assert!(resid < 1e-9, "m={m} n={n}: residual {resid}");
            let expected_k = tridiag_core::cost_model::gtx480_heuristic_k(m as u64)
                .min(tridiag_core::transition::max_k_for(n));
            assert_eq!(report.k, expected_k, "m={m} n={n}");
            assert!(report.total_us > 0.0);
        }
    }

    #[test]
    fn f32_path_works() {
        let batch = random_batch::<f32>(32, 512, 3);
        let (x, report) = solve_batch_gtx480(&batch).unwrap();
        assert!(batch.max_relative_residual(&x).unwrap() < 1e-3);
        assert_eq!(report.precision, "f32");
    }

    #[test]
    fn k0_path_is_single_kernel() {
        let batch = random_batch::<f64>(2048, 128, 5);
        let (_, report) = solve_batch_gtx480(&batch).unwrap();
        assert_eq!(report.k, 0);
        assert_eq!(report.kernels.len(), 1);
    }

    #[test]
    fn report_carries_the_executed_plan() {
        let batch = random_batch::<f64>(32, 512, 5);
        let solver = GpuTridiagSolver::gtx480();
        let (_, report) = solver.solve_batch(&batch).unwrap();
        let planned = solver.plan_geometry(32, 512, 8).unwrap();
        assert_eq!(report.plan, planned);
        assert_eq!(
            report.kernels.len(),
            report.plan.launches().count(),
            "one report per planned launch"
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
    fn hybrid_path_is_two_kernels_fused_is_one() {
        let batch = random_batch::<f64>(64, 1024, 9);
        let split = GpuTridiagSolver::new(DeviceSpec::gtx480(), GpuSolverConfig::default());
        let (_, r_split) = split.solve_batch(&batch).unwrap();
        assert_eq!(r_split.kernels.len(), 2);
        assert!(!r_split.fused);

        let fused = GpuTridiagSolver::new(
            DeviceSpec::gtx480(),
            GpuSolverConfig {
                fused: true,
                mapping: MappingVariant::BlockPerSystem,
                ..Default::default()
            },
        );
        let (xf, r_fused) = fused.solve_batch(&batch).unwrap();
        assert!(r_fused.fused);
        assert_eq!(r_fused.kernels.len(), 1);
        assert!(batch.max_relative_residual(&xf).unwrap() < 1e-9);
        // One launch overhead saved.
        let spec = DeviceSpec::gtx480();
        let split_launches = 2.0 * spec.launch_overhead_us;
        let fused_launches = spec.launch_overhead_us;
        assert!(split_launches > fused_launches);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
    fn lone_large_system_gets_partitioned() {
        let batch = random_batch::<f64>(1, 1 << 16, 11);
        let (x, report) = solve_batch_gtx480(&batch).unwrap();
        assert!(batch.max_relative_residual(&x).unwrap() < 1e-9);
        assert!(
            matches!(report.mapping, MappingVariant::BlockGroupPerSystem(g) if g > 1),
            "mapping {:?}",
            report.mapping
        );
    }

    #[test]
    fn explicit_multi_system_mapping() {
        let batch = random_batch::<f64>(8, 512, 13);
        let solver = GpuTridiagSolver::new(
            DeviceSpec::gtx480(),
            GpuSolverConfig {
                policy: TransitionPolicy::Fixed(4),
                mapping: MappingVariant::MultiSystemPerBlock(2),
                ..Default::default()
            },
        );
        let (x, report) = solver.solve_batch(&batch).unwrap();
        assert!(batch.max_relative_residual(&x).unwrap() < 1e-9);
        assert_eq!(report.k, 4);
        assert!(matches!(report.mapping, MappingVariant::MultiSystemPerBlock(2)));
        // Half the blocks of block-per-system.
        assert_eq!(report.kernels[0].blocks, 4);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
    fn shared_memory_clamps_k_on_small_devices() {
        let solver = GpuTridiagSolver::new(DeviceSpec::gtx280(), GpuSolverConfig::default());
        // GTX280 has 16 KiB shared: k = 8 in f64 cannot fit.
        let max_k = solver.max_k_for_shared(1, 8);
        assert!(max_k < 8, "got {max_k}");
        let batch = random_batch::<f64>(1, 4096, 17);
        let (x, report) = solver.solve_batch(&batch).unwrap();
        assert!(batch.max_relative_residual(&x).unwrap() < 1e-9);
        assert!(report.k <= max_k);
    }

    #[test]
    fn sanitized_pipeline_is_clean_end_to_end() {
        // Both solver paths (hybrid split and fused) under the sanitizer:
        // every kernel must run without races, OOB lanes or uninitialized
        // reads, and the report must say so.
        for fused in [false, true] {
            let solver = GpuTridiagSolver::new(
                DeviceSpec::gtx480(),
                GpuSolverConfig {
                    policy: TransitionPolicy::Fixed(3),
                    fused,
                    mapping: MappingVariant::BlockPerSystem,
                    exec: ExecConfig::sanitized(),
                    ..Default::default()
                },
            );
            let batch = random_batch::<f64>(4, 256, 23);
            let (x, report) = solver.solve_batch(&batch).unwrap();
            assert!(batch.max_relative_residual(&x).unwrap() < 1e-9);
            assert!(
                report.is_sanitizer_clean(),
                "fused={fused}: {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn planned_pipeline_lints_clean_with_exact_predictions() {
        // Both solver paths under plan recording: every kernel's affine
        // plan must lint clean and the static counter predictions must
        // match the dynamic measurements exactly.
        for fused in [false, true] {
            let solver = GpuTridiagSolver::new(
                DeviceSpec::gtx480(),
                GpuSolverConfig {
                    policy: TransitionPolicy::Fixed(3),
                    fused,
                    mapping: MappingVariant::BlockPerSystem,
                    exec: ExecConfig::planned(),
                    ..Default::default()
                },
            );
            let batch = random_batch::<f64>(4, 256, 23);
            let (x, report) = solver.solve_batch(&batch).unwrap();
            assert!(batch.max_relative_residual(&x).unwrap() < 1e-9);
            assert_eq!(report.lints.len(), report.kernels.len());
            assert!(
                report.is_lint_clean(),
                "fused={fused}: diagnostics {:?}, mismatches {:?}",
                report
                    .lints
                    .iter()
                    .flat_map(|l| &l.diagnostics)
                    .collect::<Vec<_>>(),
                report.lint_mismatches
            );
        }
    }

    #[test]
    fn matches_host_hybrid_numerically() {
        use tridiag_core::hybrid::{solve_batch as host_solve, HybridConfig};
        let batch = random_batch::<f64>(4, 777, 19);
        let (xg, _) = solve_batch_gtx480(&batch).unwrap();
        let (xh, _) = host_solve(&batch, HybridConfig::default()).unwrap();
        for i in 0..xg.len() {
            assert!((xg[i] - xh[i]).abs() < 1e-8, "row {i}");
        }
        let s0 = batch.system(0).unwrap();
        verify::check_solution(&s0, &batch.split_solution(&xg).unwrap()[0], 1e-9).unwrap();
    }
}

impl std::fmt::Display for GpuSolveReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "GPU solve [{}]: {:.1} us total, k = {} PCR steps, {:?}{}",
            self.precision,
            self.total_us,
            self.k,
            self.mapping,
            if self.fused { ", fused" } else { "" }
        )?;
        for kr in &self.kernels {
            writeln!(
                f,
                "  {:>18}: {:>9.1} us  ({:?}-bound, {:>3.0}% occupancy, {:>7.2} MiB, {:>5.1}% coalesced, {} blocks)",
                kr.timing.name,
                kr.timing.total_us,
                kr.timing.bound,
                kr.timing.occupancy_fraction * 100.0,
                kr.traffic.traffic_mib,
                kr.traffic.coalescing * 100.0,
                kr.blocks,
            )?;
        }
        if !self.violations.is_empty() {
            writeln!(f, "  sanitizer: {} violation(s)", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "    - {v}")?;
            }
        }
        if !self.lints.is_empty() {
            let findings: usize = self.lints.iter().map(|l| l.diagnostics.len()).sum();
            writeln!(
                f,
                "  lint: {} kernel plan(s), {} diagnostic(s), {} counter mismatch(es)",
                self.lints.len(),
                findings,
                self.lint_mismatches.len()
            )?;
            for l in &self.lints {
                for d in &l.diagnostics {
                    writeln!(f, "    - {d}")?;
                }
            }
            for m in &self.lint_mismatches {
                writeln!(f, "    - cross-check {m}")?;
            }
        }
        if !self.phase_sum_mismatches.is_empty() {
            writeln!(
                f,
                "  phase sums: {} counter(s) failed to add up",
                self.phase_sum_mismatches.len()
            )?;
            for m in &self.phase_sum_mismatches {
                writeln!(f, "    - {m}")?;
            }
        }
        if !self.is_verify_clean() {
            writeln!(
                f,
                "  verify: {} finding(s), {} prediction mismatch(es)",
                self.verify.findings.len(),
                self.verify_mismatches.len()
            )?;
            for v in &self.verify.findings {
                writeln!(f, "    - {v}")?;
            }
            for m in &self.verify_mismatches {
                writeln!(f, "    - prediction {m}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;
    use tridiag_core::generators::random_batch;

    #[test]
    fn report_display_is_informative() {
        let batch = random_batch::<f64>(32, 512, 1);
        let (_, report) = solve_batch_gtx480(&batch).unwrap();
        let text = report.to_string();
        assert!(text.contains("k = 6"), "{text}");
        assert!(text.contains("tiled_pcr"), "{text}");
        assert!(text.contains("p_thomas"), "{text}");
        assert!(text.contains("occupancy"), "{text}");
    }
}
