//! The end-to-end GPU solver: algorithm transition + kernel pipeline
//! (Section III).
//!
//! [`GpuTridiagSolver::solve_batch`] is the reproduction of the paper's
//! runtime: pick the PCR step count `k` from `(M, hardware)` via the
//! transition policy (Section III-D), then
//!
//! - `k = 0` (many systems): run p-Thomas directly on the interleaved
//!   batch — Table III's `M ≥ 1024` row;
//! - `k > 0`: run tiled PCR (one of the Fig. 11 grid mappings) followed
//!   by p-Thomas over the `2^k·M` interleaved subsystems, or the fused
//!   single-kernel pipeline (Section III-C).
//!
//! The returned [`GpuSolveReport`] carries per-kernel modeled timings,
//! traffic summaries and occupancy — everything the figure harness
//! prints.

use crate::buffers::{upload, GpuScalar};
use crate::consts::{PTHOMAS_BLOCK, REGS_FUSED, REGS_PTHOMAS, REGS_TILED_PCR};
use crate::kernels::fused::FusedKernel;
use crate::kernels::p_thomas::{AddrMap, PThomasKernel};
use crate::kernels::tiled_pcr::TiledPcrKernel;
use gpu_sim::timing::{time_kernel, TrafficSummary};
use gpu_sim::trace::Trace;
use gpu_sim::{
    launch_with, BoundKind, DeviceSpec, ExecConfig, GpuMemory, Json, KernelTiming, LaunchConfig,
    LintConfig, LintReport, PhaseTiming, Precision, Result, SanitizerViolation,
};
use tridiag_core::transition::{choose_k, max_k_for, TransitionPolicy};
use tridiag_core::{Layout, SystemBatch};

/// How tiled-PCR work maps onto the grid (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingVariant {
    /// Pick automatically: partition lone large systems across block
    /// groups, otherwise one block per system.
    Auto,
    /// Fig. 11(a): one block per system.
    BlockPerSystem,
    /// Fig. 11(b): each system split across this many blocks.
    BlockGroupPerSystem(usize),
    /// Fig. 11(c): this many systems multiplexed per block.
    MultiSystemPerBlock(usize),
}

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSolverConfig {
    /// Algorithm-transition policy (Section III-D).
    pub policy: TransitionPolicy,
    /// Sub-tile scale `c` (sub-tile = `c·2^k`).
    pub sub_tile_scale: usize,
    /// Fuse tiled PCR and p-Thomas into one kernel where the mapping
    /// allows (Section III-C).
    pub fused: bool,
    /// Grid mapping for the tiled PCR stage.
    pub mapping: MappingVariant,
    /// p-Thomas threads per block.
    pub pthomas_block: u32,
    /// Execution options — set `exec.sanitize` to run every kernel in
    /// the pipeline under the memory/race sanitizer (compute-sanitizer
    /// analog); violations land in [`GpuSolveReport::violations`].
    pub exec: ExecConfig,
}

impl Default for GpuSolverConfig {
    fn default() -> Self {
        Self {
            policy: TransitionPolicy::default(),
            sub_tile_scale: 1,
            fused: false,
            mapping: MappingVariant::Auto,
            pthomas_block: PTHOMAS_BLOCK,
            exec: ExecConfig::default(),
        }
    }
}

/// One kernel's contribution to a solve.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// Modeled timing breakdown.
    pub timing: KernelTiming,
    /// Traffic/compute summary.
    pub traffic: TrafficSummary,
    /// Shared memory per block (bytes).
    pub shared_bytes: usize,
    /// Blocks launched.
    pub blocks: usize,
}

/// Everything a solve did and cost.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSolveReport {
    /// PCR steps chosen by the transition policy (possibly clamped by
    /// shared memory).
    pub k: u32,
    /// Grid mapping actually used for the PCR stage.
    pub mapping: MappingVariant,
    /// Whether the fused pipeline ran.
    pub fused: bool,
    /// Per-kernel reports, in launch order.
    pub kernels: Vec<KernelReport>,
    /// Total modeled time (µs) — the sum of kernel times including one
    /// launch overhead each.
    pub total_us: f64,
    /// Scalar precision label (`"f32"` / `"f64"`).
    pub precision: &'static str,
    /// Sanitizer violation reports across every kernel in the pipeline
    /// (empty when the sanitizer is off or the run was clean).
    pub violations: Vec<SanitizerViolation>,
    /// Static lint reports, one per kernel launch (empty unless
    /// `exec.record_plan` is set).
    pub lints: Vec<LintReport>,
    /// Counters where a kernel's static prediction disagreed with its
    /// dynamic measurement (empty = exact agreement, or lint off).
    pub lint_mismatches: Vec<String>,
    /// Counters whose per-phase breakdown failed to sum exactly to the
    /// kernel total, prefixed with the kernel name (always checked;
    /// empty = the invariant held for every launch).
    pub phase_sum_mismatches: Vec<String>,
    /// Span/event trace of the whole solve on the modeled-time axis:
    /// the transition-rule decision, mapping choice, buffer setup, and
    /// each kernel launch with its per-phase children. Export with
    /// [`gpu_sim::trace::Trace::to_chrome_json`].
    pub trace: Trace,
}

impl GpuSolveReport {
    /// `true` when the run produced no sanitizer reports (vacuously true
    /// with the sanitizer off).
    pub fn is_sanitizer_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// `true` when static analysis found no diagnostics and every
    /// predicted counter matched its dynamic measurement (vacuously
    /// true when plan recording is off).
    pub fn is_lint_clean(&self) -> bool {
        self.lints.iter().all(LintReport::is_clean) && self.lint_mismatches.is_empty()
    }

    /// Modeled time of the tiled PCR stage alone (0 when `k = 0`).
    pub fn pcr_us(&self) -> f64 {
        if self.fused || self.k == 0 {
            0.0
        } else {
            self.kernels.first().map(|k| k.timing.total_us).unwrap_or(0.0)
        }
    }

    /// `true` when every kernel's per-phase counters summed exactly to
    /// its totals (the attribution invariant).
    pub fn is_phase_sum_clean(&self) -> bool {
        self.phase_sum_mismatches.is_empty()
    }

    /// Terminal profile: top phases by modeled time across the
    /// pipeline, a bound-kind histogram, and per-phase traffic/compute.
    pub fn profile_report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile [{}]: {:.1} us modeled, {} kernel launch(es), k = {}, {:?}{}",
            self.precision,
            self.total_us,
            self.kernels.len(),
            self.k,
            self.mapping,
            if self.fused { ", fused" } else { "" }
        );
        let mut rows: Vec<(String, &PhaseTiming)> = Vec::new();
        for kr in &self.kernels {
            for ph in &kr.timing.phases {
                rows.push((format!("{}/{}", kr.timing.name, ph.label), ph));
            }
        }
        rows.sort_by(|a, b| b.1.us.partial_cmp(&a.1.us).unwrap_or(std::cmp::Ordering::Equal));
        let body_us: f64 = self
            .kernels
            .iter()
            .map(|k| k.timing.total_us - k.timing.launch_us)
            .sum();
        let _ = writeln!(out, "top phases by modeled time:");
        for (i, (name, ph)) in rows.iter().enumerate().take(10) {
            let _ = writeln!(
                out,
                "  {:>2}. {:<28} {:>9.2} us ({:>4.1}%)  {:<9} {:>9.3} MiB {:>9.3} Mflop",
                i + 1,
                name,
                ph.us,
                if body_us > 0.0 { 100.0 * ph.us / body_us } else { 0.0 },
                format!("{:?}", ph.bound),
                ph.stats.global_bytes() as f64 / (1024.0 * 1024.0),
                ph.stats.flops as f64 / 1e6,
            );
        }
        let mut histo: Vec<(BoundKind, usize)> = Vec::new();
        for (_, ph) in &rows {
            match histo.iter_mut().find(|(b, _)| *b == ph.bound) {
                Some((_, n)) => *n += 1,
                None => histo.push((ph.bound, 1)),
            }
        }
        histo.sort_by_key(|h| std::cmp::Reverse(h.1));
        let histo_txt: Vec<String> = histo
            .iter()
            .map(|(b, n)| format!("{b:?} x{n}"))
            .collect();
        let launch_us: f64 = self.kernels.iter().map(|k| k.timing.launch_us).sum();
        let _ = writeln!(
            out,
            "phase bound kinds: {}; launch overhead {:.1} us across {} launch(es)",
            if histo_txt.is_empty() { "none".into() } else { histo_txt.join(", ") },
            launch_us,
            self.kernels.len()
        );
        if !self.phase_sum_mismatches.is_empty() {
            let _ = writeln!(out, "PHASE-SUM VIOLATIONS:");
            for m in &self.phase_sum_mismatches {
                let _ = writeln!(out, "  - {m}");
            }
        }
        out
    }

    /// Serialize the full report (timings, per-phase breakdowns,
    /// sanitizer/lint findings, and the trace) as a JSON object.
    pub fn to_json(&self) -> Json {
        let phase_json = |ph: &PhaseTiming| {
            Json::Obj(vec![
                ("label".into(), Json::str(ph.label)),
                ("us".into(), Json::num(ph.us)),
                ("compute_us".into(), Json::num(ph.compute_us)),
                ("bandwidth_us".into(), Json::num(ph.bandwidth_us)),
                ("latency_us".into(), Json::num(ph.latency_us)),
                ("bound".into(), Json::str(format!("{:?}", ph.bound))),
                ("flops".into(), Json::num(ph.stats.flops as f64)),
                ("global_bytes".into(), Json::num(ph.stats.global_bytes() as f64)),
                (
                    "global_transactions".into(),
                    Json::num(ph.stats.global_transactions() as f64),
                ),
                ("rounds".into(), Json::num(ph.stats.global_access_rounds as f64)),
                ("shared_accesses".into(), Json::num(ph.stats.shared_accesses as f64)),
                (
                    "bank_conflict_replays".into(),
                    Json::num(ph.stats.bank_conflict_replays as f64),
                ),
                ("barriers".into(), Json::num(ph.stats.barriers as f64)),
            ])
        };
        let kernels = self
            .kernels
            .iter()
            .map(|kr| {
                Json::Obj(vec![
                    ("name".into(), Json::str(kr.timing.name)),
                    ("blocks".into(), Json::num(kr.blocks as f64)),
                    ("shared_bytes".into(), Json::num(kr.shared_bytes as f64)),
                    ("total_us".into(), Json::num(kr.timing.total_us)),
                    ("launch_us".into(), Json::num(kr.timing.launch_us)),
                    ("compute_us".into(), Json::num(kr.timing.compute_us)),
                    ("bandwidth_us".into(), Json::num(kr.timing.bandwidth_us)),
                    ("latency_us".into(), Json::num(kr.timing.latency_us)),
                    ("bound".into(), Json::str(format!("{:?}", kr.timing.bound))),
                    ("waves".into(), Json::num(kr.timing.waves)),
                    ("occupancy".into(), Json::num(kr.timing.occupancy_fraction)),
                    ("traffic_mib".into(), Json::num(kr.traffic.traffic_mib)),
                    ("coalescing".into(), Json::num(kr.traffic.coalescing)),
                    ("mflops".into(), Json::num(kr.traffic.mflops)),
                    (
                        "phases".into(),
                        Json::Arr(kr.timing.phases.iter().map(phase_json).collect()),
                    ),
                ])
            })
            .collect();
        let strings = |v: &[String]| Json::Arr(v.iter().map(Json::str).collect());
        let trace = gpu_sim::json::parse(&self.trace.to_chrome_json())
            .expect("exporter emits valid JSON");
        Json::Obj(vec![
            ("k".into(), Json::num(self.k)),
            ("mapping".into(), Json::str(format!("{:?}", self.mapping))),
            ("fused".into(), Json::Bool(self.fused)),
            ("precision".into(), Json::str(self.precision)),
            ("total_us".into(), Json::num(self.total_us)),
            ("kernels".into(), Json::Arr(kernels)),
            (
                "violations".into(),
                Json::Arr(self.violations.iter().map(|v| Json::str(v.to_string())).collect()),
            ),
            (
                "lint_diagnostics".into(),
                Json::Arr(
                    self.lints
                        .iter()
                        .flat_map(|l| &l.diagnostics)
                        .map(|d| Json::str(d.to_string()))
                        .collect(),
                ),
            ),
            ("lint_mismatches".into(), strings(&self.lint_mismatches)),
            ("phase_sum_mismatches".into(), strings(&self.phase_sum_mismatches)),
            ("trace".into(), trace),
        ])
    }
}

/// The solver: a device spec plus a configuration.
#[derive(Debug, Clone)]
pub struct GpuTridiagSolver {
    spec: DeviceSpec,
    config: GpuSolverConfig,
}

impl GpuTridiagSolver {
    /// Build a solver for `spec` with `config`.
    pub fn new(spec: DeviceSpec, config: GpuSolverConfig) -> Self {
        Self { spec, config }
    }

    /// GTX480 with the paper's defaults.
    pub fn gtx480() -> Self {
        Self::new(DeviceSpec::gtx480(), GpuSolverConfig::default())
    }

    /// The device spec in use.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Largest `k` whose window still fits this device's shared memory
    /// at scale `c` and element size `bytes`.
    pub fn max_k_for_shared(&self, c: usize, bytes: usize) -> u32 {
        let mut k = 0u32;
        while k < 20 {
            let st = c.max(1) << (k + 1);
            let elems = TiledPcrKernel::shared_elems_per_slot(k + 1, st);
            if elems * bytes > self.spec.max_shared_per_block {
                break;
            }
            k += 1;
        }
        k
    }

    /// Solve every system in `batch` on the simulated device. Returns
    /// the solutions in the batch's layout plus the solve report.
    pub fn solve_batch<S: GpuScalar>(
        &self,
        batch: &SystemBatch<S>,
    ) -> Result<(Vec<S>, GpuSolveReport)> {
        let m = batch.num_systems();
        let n = batch.system_len();
        let precision = if <S as gpu_sim::Elem>::BYTES == 4 {
            Precision::F32
        } else {
            Precision::F64
        };
        let c = self.config.sub_tile_scale.max(1);
        let mut k = choose_k(self.config.policy, m, n)
            .min(self.max_k_for_shared(c, <S as gpu_sim::Elem>::BYTES))
            .min(max_k_for(n));
        // 2^k threads per group must fit a block.
        while k > 0 && (1u32 << k) > self.spec.max_threads_per_block {
            k -= 1;
        }

        let mut kernels: Vec<KernelReport> = Vec::new();
        let mut violations: Vec<SanitizerViolation> = Vec::new();
        let mut lints: Vec<LintReport> = Vec::new();
        let mut lint_mismatches: Vec<String> = Vec::new();
        let mut phase_sums: Vec<String> = Vec::new();
        let mut mem = GpuMemory::new();
        // Device footprint for the buffer_setup trace marker: every path
        // uploads the five coefficient/solution buffers.
        let mut buffer_elems = 5 * m * n;

        let x = if k == 0 {
            // ---- pure p-Thomas on the interleaved batch -------------
            let inter = batch.to_layout(Layout::Interleaved);
            let dev = upload(&mut mem, &inter);
            let cp = mem.alloc(dev.total());
            let dp = mem.alloc(dev.total());
            buffer_elems += 2 * dev.total();
            let kernel = PThomasKernel {
                a: dev.a,
                b: dev.b,
                c: dev.c,
                d: dev.d,
                c_prime: cp,
                d_prime: dp,
                x: dev.x,
                map: AddrMap::Interleaved { m, n },
            };
            let cfg = LaunchConfig::new(
                "p_thomas",
                m.div_ceil(self.config.pthomas_block as usize),
                self.config.pthomas_block.min(m as u32).max(1),
            )
            .with_regs(REGS_PTHOMAS);
            let mut res = launch_with(&self.spec, &cfg, &self.config.exec, &kernel, &mut mem)?;
            violations.append(&mut res.violations);
            collect_lint(&mut res, &mut lints, &mut lint_mismatches);
            kernels.push(self.report(&res, precision, &mut phase_sums));
            // Convert back to the caller's layout.
            let xi = mem.read(dev.x)?;
            let mut out = vec![S::ZERO; batch.total_len()];
            for sys in 0..m {
                for row in 0..n {
                    out[batch.index(sys, row)] = xi[row * m + sys];
                }
            }
            out
        } else {
            let contig = batch.to_layout(Layout::Contiguous);
            let dev = upload(&mut mem, &contig);
            let st = c << k;
            let mapping = self.resolve_mapping(m, n, k, st, <S as gpu_sim::Elem>::BYTES);

            let use_fused = self.config.fused
                && matches!(mapping, MappingVariant::BlockPerSystem);
            let xr = if use_fused {
                let cp = mem.alloc(m * n);
                let dp = mem.alloc(m * n);
                buffer_elems += 2 * m * n;
                let kernel = FusedKernel {
                    input: [dev.a, dev.b, dev.c, dev.d],
                    c_prime: cp,
                    d_prime: dp,
                    x: dev.x,
                    n,
                    k,
                    sub_tile: st,
                    m,
                };
                let cfg = LaunchConfig::new("fused_pcr_thomas", m, 1 << k).with_regs(REGS_FUSED);
                let mut res =
                    launch_with(&self.spec, &cfg, &self.config.exec, &kernel, &mut mem)?;
                violations.append(&mut res.violations);
                collect_lint(&mut res, &mut lints, &mut lint_mismatches);
                kernels.push(self.report(&res, precision, &mut phase_sums));
                mem.read(dev.x)?.to_vec()
            } else {
                let (assignments, threads) = match mapping {
                    MappingVariant::BlockPerSystem => {
                        (TiledPcrKernel::assign_block_per_system(m, n), 1u32 << k)
                    }
                    MappingVariant::BlockGroupPerSystem(g) => (
                        TiledPcrKernel::assign_block_group_per_system(m, n, g),
                        1u32 << k,
                    ),
                    MappingVariant::MultiSystemPerBlock(q) => (
                        TiledPcrKernel::assign_multi_system_per_block(m, n, q),
                        ((q as u32) << k).min(self.spec.max_threads_per_block),
                    ),
                    MappingVariant::Auto => unreachable!("resolved above"),
                };
                let out = [
                    mem.alloc(m * n),
                    mem.alloc(m * n),
                    mem.alloc(m * n),
                    mem.alloc(m * n),
                ];
                buffer_elems += 4 * m * n;
                let blocks = assignments.len();
                let kernel = TiledPcrKernel {
                    input: [dev.a, dev.b, dev.c, dev.d],
                    output: out,
                    n,
                    k,
                    sub_tile: st,
                    assignments,
                };
                let cfg =
                    LaunchConfig::new("tiled_pcr", blocks, threads).with_regs(REGS_TILED_PCR);
                let mut res =
                    launch_with(&self.spec, &cfg, &self.config.exec, &kernel, &mut mem)?;
                violations.append(&mut res.violations);
                collect_lint(&mut res, &mut lints, &mut lint_mismatches);
                kernels.push(self.report(&res, precision, &mut phase_sums));

                // p-Thomas over the 2^k·M interleaved subsystems.
                let cp = mem.alloc(m * n);
                let dp = mem.alloc(m * n);
                buffer_elems += 2 * m * n;
                let map = AddrMap::HybridSubsystems { m, n, k };
                let total_threads = map.num_threads();
                let kernel = PThomasKernel {
                    a: out[0],
                    b: out[1],
                    c: out[2],
                    d: out[3],
                    c_prime: cp,
                    d_prime: dp,
                    x: dev.x,
                    map,
                };
                let tpb = self
                    .config
                    .pthomas_block
                    .min(total_threads as u32)
                    .max(1);
                let cfg = LaunchConfig::new(
                    "p_thomas",
                    total_threads.div_ceil(tpb as usize),
                    tpb,
                )
                .with_regs(REGS_PTHOMAS);
                let mut res =
                    launch_with(&self.spec, &cfg, &self.config.exec, &kernel, &mut mem)?;
                violations.append(&mut res.violations);
                collect_lint(&mut res, &mut lints, &mut lint_mismatches);
                kernels.push(self.report(&res, precision, &mut phase_sums));
                mem.read(dev.x)?.to_vec()
            };

            // Contiguous → caller's layout.
            let mut out = vec![S::ZERO; batch.total_len()];
            for sys in 0..m {
                for row in 0..n {
                    out[batch.index(sys, row)] = xr[sys * n + row];
                }
            }
            let trace = self.build_trace(
                m,
                n,
                k,
                mapping,
                use_fused,
                S::NAME,
                buffer_elems,
                <S as gpu_sim::Elem>::BYTES,
                &kernels,
            );
            let report = GpuSolveReport {
                k,
                mapping,
                fused: use_fused,
                total_us: kernels.iter().map(|kr| kr.timing.total_us).sum(),
                kernels,
                precision: S::NAME,
                violations,
                lints,
                lint_mismatches,
                phase_sum_mismatches: phase_sums,
                trace,
            };
            return Ok((out, report));
        };

        let trace = self.build_trace(
            m,
            n,
            k,
            MappingVariant::BlockPerSystem,
            false,
            S::NAME,
            buffer_elems,
            <S as gpu_sim::Elem>::BYTES,
            &kernels,
        );
        let report = GpuSolveReport {
            k,
            mapping: MappingVariant::BlockPerSystem,
            fused: false,
            total_us: kernels.iter().map(|kr| kr.timing.total_us).sum(),
            kernels,
            precision: S::NAME,
            violations,
            lints,
            lint_mismatches,
            phase_sum_mismatches: phase_sums,
            trace,
        };
        Ok((x, report))
    }

    fn report(
        &self,
        res: &gpu_sim::LaunchResult,
        precision: Precision,
        phase_sums: &mut Vec<String>,
    ) -> KernelReport {
        for msg in res.stats.phase_sum_mismatches() {
            phase_sums.push(format!("{}: {msg}", res.name));
        }
        KernelReport {
            timing: time_kernel(&self.spec, res, precision),
            traffic: TrafficSummary::from_stats(&self.spec, &res.stats),
            shared_bytes: res.shared_bytes_per_block,
            blocks: res.stats.blocks,
        }
    }

    /// Build the solve's span/event trace from the finished kernel
    /// reports: pipeline decisions as instants at t = 0, then each
    /// launch as a span on a cumulative modeled-time axis with its
    /// launch overhead and per-phase children nested inside.
    #[allow(clippy::too_many_arguments)]
    fn build_trace(
        &self,
        m: usize,
        n: usize,
        k: u32,
        mapping: MappingVariant,
        fused: bool,
        precision: &'static str,
        buffer_elems: usize,
        elem_bytes: usize,
        kernels: &[KernelReport],
    ) -> Trace {
        let mut tr = Trace::new(format!("tridiag solve on {}", self.spec.name));
        let total: f64 = kernels.iter().map(|kr| kr.timing.total_us).sum();
        tr.span(
            "solve",
            "solver",
            0,
            0.0,
            total,
            vec![
                ("m".into(), Json::num(m as f64)),
                ("n".into(), Json::num(n as f64)),
                ("precision".into(), Json::str(precision)),
            ],
        );
        tr.instant(
            "transition_rule",
            "solver",
            0,
            0.0,
            vec![
                ("policy".into(), Json::str(format!("{:?}", self.config.policy))),
                ("m".into(), Json::num(m as f64)),
                ("n".into(), Json::num(n as f64)),
                ("parallelism".into(), Json::num(self.spec.parallelism() as f64)),
                ("k".into(), Json::num(k)),
            ],
        );
        tr.instant(
            "grid_mapping",
            "solver",
            0,
            0.0,
            vec![
                ("mapping".into(), Json::str(format!("{mapping:?}"))),
                ("fused".into(), Json::Bool(fused)),
            ],
        );
        tr.instant(
            "buffer_setup",
            "solver",
            0,
            0.0,
            vec![
                ("device_elems".into(), Json::num(buffer_elems as f64)),
                ("device_bytes".into(), Json::num((buffer_elems * elem_bytes) as f64)),
            ],
        );
        let mut cursor = 0.0f64;
        for kr in kernels {
            let t = &kr.timing;
            tr.span(
                format!("kernel:{}", t.name),
                "kernel",
                0,
                cursor,
                t.total_us,
                vec![
                    ("blocks".into(), Json::num(kr.blocks as f64)),
                    ("bound".into(), Json::str(format!("{:?}", t.bound))),
                    ("occupancy".into(), Json::num(t.occupancy_fraction)),
                    ("waves".into(), Json::num(t.waves)),
                ],
            );
            tr.span("launch_overhead", "kernel", 0, cursor, t.launch_us, Vec::new());
            let mut at = cursor + t.launch_us;
            for ph in &t.phases {
                tr.span(
                    format!("phase:{}", ph.label),
                    "phase",
                    0,
                    at,
                    ph.us,
                    vec![
                        ("bound".into(), Json::str(format!("{:?}", ph.bound))),
                        ("flops".into(), Json::num(ph.stats.flops as f64)),
                        ("global_bytes".into(), Json::num(ph.stats.global_bytes() as f64)),
                        (
                            "transactions".into(),
                            Json::num(ph.stats.global_transactions() as f64),
                        ),
                    ],
                );
                at += ph.us;
            }
            cursor += t.total_us;
        }
        tr
    }

    /// Resolve [`MappingVariant::Auto`]: partition lone large systems
    /// across block groups so more SMs engage; otherwise one block per
    /// system.
    fn resolve_mapping(
        &self,
        m: usize,
        n: usize,
        k: u32,
        st: usize,
        elem_bytes: usize,
    ) -> MappingVariant {
        match self.config.mapping {
            MappingVariant::Auto => {
                let want_blocks = 2 * self.spec.num_sms as usize;
                if m < want_blocks {
                    // Partition each system, but keep partitions at
                    // least 4 sub-tiles long so halo overhead stays
                    // negligible.
                    let g_max_useful = (n / (4 * st)).max(1);
                    let g = want_blocks.div_ceil(m).min(g_max_useful);
                    if g > 1 {
                        return MappingVariant::BlockGroupPerSystem(g);
                    }
                }
                let _ = elem_bytes;
                MappingVariant::BlockPerSystem
            }
            explicit => {
                if let MappingVariant::MultiSystemPerBlock(q) = explicit {
                    // Validate the footprint fits shared memory.
                    let elems = TiledPcrKernel::shared_elems_per_slot(k, st) * q;
                    if elems * elem_bytes > self.spec.max_shared_per_block {
                        return MappingVariant::BlockPerSystem;
                    }
                }
                explicit
            }
        }
    }
}

/// When the launch recorded an access plan, lint it and cross-check
/// the static counter predictions against the measured stats.
fn collect_lint(
    res: &mut gpu_sim::LaunchResult,
    lints: &mut Vec<LintReport>,
    mismatches: &mut Vec<String>,
) {
    if let Some(plan) = res.plan.take() {
        let lr = gpu_sim::lint(&plan, &LintConfig::default());
        mismatches.extend(lr.cross_check(&res.stats));
        lints.push(lr);
    }
}

/// Convenience: solve with defaults on a GTX480; returns the solution
/// in the batch's layout.
pub fn solve_batch_gtx480<S: GpuScalar>(
    batch: &SystemBatch<S>,
) -> Result<(Vec<S>, GpuSolveReport)> {
    GpuTridiagSolver::gtx480().solve_batch(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::generators::random_batch;
    use tridiag_core::verify;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
    fn solves_across_the_table3_regimes() {
        // (m, n) pairs spanning every Table III row (k = 8, 7, 6, 5, 0),
        // sizes kept moderate for test speed.
        for (m, n) in [(1usize, 2048usize), (16, 1024), (64, 512), (600, 256), (1100, 64)] {
            let batch = random_batch::<f64>(m, n, 7 + m as u64);
            let (x, report) = solve_batch_gtx480(&batch).unwrap();
            let resid = batch.max_relative_residual(&x).unwrap();
            assert!(resid < 1e-9, "m={m} n={n}: residual {resid}");
            let expected_k = tridiag_core::cost_model::gtx480_heuristic_k(m as u64)
                .min(tridiag_core::transition::max_k_for(n));
            assert_eq!(report.k, expected_k, "m={m} n={n}");
            assert!(report.total_us > 0.0);
        }
    }

    #[test]
    fn f32_path_works() {
        let batch = random_batch::<f32>(32, 512, 3);
        let (x, report) = solve_batch_gtx480(&batch).unwrap();
        assert!(batch.max_relative_residual(&x).unwrap() < 1e-3);
        assert_eq!(report.precision, "f32");
    }

    #[test]
    fn k0_path_is_single_kernel() {
        let batch = random_batch::<f64>(2048, 128, 5);
        let (_, report) = solve_batch_gtx480(&batch).unwrap();
        assert_eq!(report.k, 0);
        assert_eq!(report.kernels.len(), 1);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
    fn hybrid_path_is_two_kernels_fused_is_one() {
        let batch = random_batch::<f64>(64, 1024, 9);
        let split = GpuTridiagSolver::new(DeviceSpec::gtx480(), GpuSolverConfig::default());
        let (_, r_split) = split.solve_batch(&batch).unwrap();
        assert_eq!(r_split.kernels.len(), 2);
        assert!(!r_split.fused);

        let fused = GpuTridiagSolver::new(
            DeviceSpec::gtx480(),
            GpuSolverConfig {
                fused: true,
                mapping: MappingVariant::BlockPerSystem,
                ..Default::default()
            },
        );
        let (xf, r_fused) = fused.solve_batch(&batch).unwrap();
        assert!(r_fused.fused);
        assert_eq!(r_fused.kernels.len(), 1);
        assert!(batch.max_relative_residual(&xf).unwrap() < 1e-9);
        // One launch overhead saved.
        let spec = DeviceSpec::gtx480();
        let split_launches = 2.0 * spec.launch_overhead_us;
        let fused_launches = spec.launch_overhead_us;
        assert!(split_launches > fused_launches);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
    fn lone_large_system_gets_partitioned() {
        let batch = random_batch::<f64>(1, 1 << 16, 11);
        let (x, report) = solve_batch_gtx480(&batch).unwrap();
        assert!(batch.max_relative_residual(&x).unwrap() < 1e-9);
        assert!(
            matches!(report.mapping, MappingVariant::BlockGroupPerSystem(g) if g > 1),
            "mapping {:?}",
            report.mapping
        );
    }

    #[test]
    fn explicit_multi_system_mapping() {
        let batch = random_batch::<f64>(8, 512, 13);
        let solver = GpuTridiagSolver::new(
            DeviceSpec::gtx480(),
            GpuSolverConfig {
                policy: TransitionPolicy::Fixed(4),
                mapping: MappingVariant::MultiSystemPerBlock(2),
                ..Default::default()
            },
        );
        let (x, report) = solver.solve_batch(&batch).unwrap();
        assert!(batch.max_relative_residual(&x).unwrap() < 1e-9);
        assert_eq!(report.k, 4);
        assert!(matches!(report.mapping, MappingVariant::MultiSystemPerBlock(2)));
        // Half the blocks of block-per-system.
        assert_eq!(report.kernels[0].blocks, 4);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
    fn shared_memory_clamps_k_on_small_devices() {
        let solver = GpuTridiagSolver::new(DeviceSpec::gtx280(), GpuSolverConfig::default());
        // GTX280 has 16 KiB shared: k = 8 in f64 cannot fit.
        let max_k = solver.max_k_for_shared(1, 8);
        assert!(max_k < 8, "got {max_k}");
        let batch = random_batch::<f64>(1, 4096, 17);
        let (x, report) = solver.solve_batch(&batch).unwrap();
        assert!(batch.max_relative_residual(&x).unwrap() < 1e-9);
        assert!(report.k <= max_k);
    }

    #[test]
    fn sanitized_pipeline_is_clean_end_to_end() {
        // Both solver paths (hybrid split and fused) under the sanitizer:
        // every kernel must run without races, OOB lanes or uninitialized
        // reads, and the report must say so.
        for fused in [false, true] {
            let solver = GpuTridiagSolver::new(
                DeviceSpec::gtx480(),
                GpuSolverConfig {
                    policy: TransitionPolicy::Fixed(3),
                    fused,
                    mapping: MappingVariant::BlockPerSystem,
                    exec: ExecConfig::sanitized(),
                    ..Default::default()
                },
            );
            let batch = random_batch::<f64>(4, 256, 23);
            let (x, report) = solver.solve_batch(&batch).unwrap();
            assert!(batch.max_relative_residual(&x).unwrap() < 1e-9);
            assert!(
                report.is_sanitizer_clean(),
                "fused={fused}: {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn planned_pipeline_lints_clean_with_exact_predictions() {
        // Both solver paths under plan recording: every kernel's affine
        // plan must lint clean and the static counter predictions must
        // match the dynamic measurements exactly.
        for fused in [false, true] {
            let solver = GpuTridiagSolver::new(
                DeviceSpec::gtx480(),
                GpuSolverConfig {
                    policy: TransitionPolicy::Fixed(3),
                    fused,
                    mapping: MappingVariant::BlockPerSystem,
                    exec: ExecConfig::planned(),
                    ..Default::default()
                },
            );
            let batch = random_batch::<f64>(4, 256, 23);
            let (x, report) = solver.solve_batch(&batch).unwrap();
            assert!(batch.max_relative_residual(&x).unwrap() < 1e-9);
            assert_eq!(report.lints.len(), report.kernels.len());
            assert!(
                report.is_lint_clean(),
                "fused={fused}: diagnostics {:?}, mismatches {:?}",
                report
                    .lints
                    .iter()
                    .flat_map(|l| &l.diagnostics)
                    .collect::<Vec<_>>(),
                report.lint_mismatches
            );
        }
    }

    #[test]
    fn matches_host_hybrid_numerically() {
        use tridiag_core::hybrid::{solve_batch as host_solve, HybridConfig};
        let batch = random_batch::<f64>(4, 777, 19);
        let (xg, _) = solve_batch_gtx480(&batch).unwrap();
        let (xh, _) = host_solve(&batch, HybridConfig::default()).unwrap();
        for i in 0..xg.len() {
            assert!((xg[i] - xh[i]).abs() < 1e-8, "row {i}");
        }
        let s0 = batch.system(0).unwrap();
        verify::check_solution(&s0, &batch.split_solution(&xg).unwrap()[0], 1e-9).unwrap();
    }
}

impl std::fmt::Display for GpuSolveReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "GPU solve [{}]: {:.1} us total, k = {} PCR steps, {:?}{}",
            self.precision,
            self.total_us,
            self.k,
            self.mapping,
            if self.fused { ", fused" } else { "" }
        )?;
        for kr in &self.kernels {
            writeln!(
                f,
                "  {:>18}: {:>9.1} us  ({:?}-bound, {:>3.0}% occupancy, {:>7.2} MiB, {:>5.1}% coalesced, {} blocks)",
                kr.timing.name,
                kr.timing.total_us,
                kr.timing.bound,
                kr.timing.occupancy_fraction * 100.0,
                kr.traffic.traffic_mib,
                kr.traffic.coalescing * 100.0,
                kr.blocks,
            )?;
        }
        if !self.violations.is_empty() {
            writeln!(f, "  sanitizer: {} violation(s)", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "    - {v}")?;
            }
        }
        if !self.lints.is_empty() {
            let findings: usize = self.lints.iter().map(|l| l.diagnostics.len()).sum();
            writeln!(
                f,
                "  lint: {} kernel plan(s), {} diagnostic(s), {} counter mismatch(es)",
                self.lints.len(),
                findings,
                self.lint_mismatches.len()
            )?;
            for l in &self.lints {
                for d in &l.diagnostics {
                    writeln!(f, "    - {d}")?;
                }
            }
            for m in &self.lint_mismatches {
                writeln!(f, "    - cross-check {m}")?;
            }
        }
        if !self.phase_sum_mismatches.is_empty() {
            writeln!(
                f,
                "  phase sums: {} counter(s) failed to add up",
                self.phase_sum_mismatches.len()
            )?;
            for m in &self.phase_sum_mismatches {
                writeln!(f, "    - {m}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;
    use tridiag_core::generators::random_batch;

    #[test]
    fn report_display_is_informative() {
        let batch = random_batch::<f64>(32, 512, 1);
        let (_, report) = solve_batch_gtx480(&batch).unwrap();
        let text = report.to_string();
        assert!(text.contains("k = 6"), "{text}");
        assert!(text.contains("tiled_pcr"), "{text}");
        assert!(text.contains("p_thomas"), "{text}");
        assert!(text.contains("occupancy"), "{text}");
    }
}
