//! Plan-level static verifier: abstract interpretation of a
//! [`SolvePlan`]'s step sequence.
//!
//! [`SolvePlan::validate`] checks *structure* (slots created once, in
//! order; exactly one download). This module checks *meaning*: it walks
//! the step sequence with an abstract machine whose state is, per slot,
//! "created? written? last used where?", and certifies
//!
//! - **dataflow** — every slot a launch binds or a download reads was
//!   `Upload`ed/`Alloc`ed first ([`FindingKind::UseBeforeDef`]), and
//!   `Alloc`-only scratch is written by some kernel before anything
//!   reads it ([`FindingKind::UnwrittenScratchRead`]), using the
//!   per-kernel read/write signatures [`crate::plan::KernelOp::reads`] /
//!   [`crate::plan::KernelOp::writes`];
//! - **slot hygiene** — duplicate creations
//!   ([`FindingKind::DuplicateDef`]), slots that are declared or
//!   created but feed nothing ([`FindingKind::DanglingSlot`]), and
//!   bindings past the buffer table
//!   ([`FindingKind::SlotOutOfRange`]);
//! - **layout pairing** — exactly one `Convert` before the uploads and
//!   one `ConvertBack` after the download, both matching the plan's
//!   device layout ([`FindingKind::LayoutMismatch`]); plans whose host
//!   layout equals the device layout legitimately elide both steps;
//! - **aliasing** — no slot bound as both input and output of a single
//!   launch, and no output bound twice
//!   ([`FindingKind::AliasHazard`]);
//! - **memory** — a liveness-based high-water mark: buffers become
//!   resident at their `Upload`/`Alloc` step and die after their last
//!   use, and the exact peak must fit the device's global memory
//!   ([`FindingKind::PeakMemoryOverflow`]). [`SolvePlan::build`]
//!   delegates its plan-time OOM check to the same computation
//!   ([`peak_resident_bytes`]), so there is one memory model.
//!
//! The verifier also emits a [`PlanPrediction`] — bytes H2D/D2H per
//! step, peak resident bytes, launch counts per kernel — that
//! [`crate::executor::PlanExecutor`] cross-checks **exactly** against
//! the stats of the real run (mirroring the access-plan lint's
//! "predicted == measured" discipline). [`verify_sharded_plan`] extends
//! all of this across devices: every shard is verified against *its*
//! device, plus the cross-device invariants (contiguous disjoint
//! partition coverage, balance, pinned `k`/mapping/fused consistency
//! on same-model devices).

use crate::distributed::DistributedPlan;
use crate::plan::{ShardedPlan, Slot, SolvePlan, Step};
use gpu_sim::{DeviceGroup, DeviceSpec, Json};
use std::fmt;

/// Diagnostic class of a [`PlanFinding`] — the negative suite proves
/// every class fires on a corrupted plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// A launch or download touches a slot before any step creates it.
    UseBeforeDef,
    /// A read of `Alloc`-only scratch that no prior step wrote.
    UnwrittenScratchRead,
    /// A slot is created (uploaded/allocated) more than once.
    DuplicateDef,
    /// A slot is declared or created but never used by any launch or
    /// download.
    DanglingSlot,
    /// `Convert`/`ConvertBack` missing, duplicated, misplaced, or not
    /// matching the plan's device layout.
    LayoutMismatch,
    /// A slot bound as both input and output of one launch, or bound
    /// twice as output.
    AliasHazard,
    /// The liveness-based peak resident bytes exceed the device's
    /// global memory.
    PeakMemoryOverflow,
    /// A step references a slot past the buffer table.
    SlotOutOfRange,
    /// Shards do not tile the batch contiguously, disjointly, and
    /// balanced.
    ShardPartition,
    /// A shard contradicts the pinned reference decisions or the group
    /// geometry.
    ShardConsistency,
    /// Distributed chunks do not tile the system's rows contiguously,
    /// disjointly, and balanced, or a chunk is too small to own its two
    /// interface rows.
    ChunkPartition,
    /// A distributed chunk contradicts the group geometry or its
    /// interior plan's geometry does not match the chunk.
    ChunkConsistency,
    /// The interface exchange is broken: a chunk's interface
    /// coefficients would be used before any interior elimination
    /// defines them, or an interior plan exists with no interior rows.
    InterfaceExchange,
    /// The reduced interface system is missing or its size does not
    /// match `2·D` interface unknowns.
    ReducedSystem,
}

impl FindingKind {
    /// Stable kebab-case label (used in JSON and CLI output).
    pub fn label(self) -> &'static str {
        match self {
            FindingKind::UseBeforeDef => "use-before-def",
            FindingKind::UnwrittenScratchRead => "unwritten-scratch-read",
            FindingKind::DuplicateDef => "duplicate-def",
            FindingKind::DanglingSlot => "dangling-slot",
            FindingKind::LayoutMismatch => "layout-mismatch",
            FindingKind::AliasHazard => "alias-hazard",
            FindingKind::PeakMemoryOverflow => "peak-memory-overflow",
            FindingKind::SlotOutOfRange => "slot-out-of-range",
            FindingKind::ShardPartition => "shard-partition",
            FindingKind::ShardConsistency => "shard-consistency",
            FindingKind::ChunkPartition => "chunk-partition",
            FindingKind::ChunkConsistency => "chunk-consistency",
            FindingKind::InterfaceExchange => "interface-exchange",
            FindingKind::ReducedSystem => "reduced-system",
        }
    }
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One verifier diagnostic, attributed to the step (and, under
/// [`verify_sharded_plan`], the shard) that caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanFinding {
    /// Diagnostic class.
    pub kind: FindingKind,
    /// Step index in the plan's step sequence, when attributable.
    pub step: Option<usize>,
    /// Shard index, when the finding belongs to one shard of a
    /// [`ShardedPlan`].
    pub shard: Option<usize>,
    /// Chunk index, when the finding belongs to one chunk of a
    /// [`crate::distributed::DistributedPlan`].
    pub chunk: Option<usize>,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for PlanFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let scope = match (self.shard, self.chunk) {
            (Some(sh), _) => Some(format!("shard {sh}")),
            (None, Some(ch)) => Some(format!("chunk {ch}")),
            (None, None) => None,
        };
        match (scope, self.step) {
            (Some(sc), Some(st)) => {
                write!(f, "{sc}, step {st}: {}: {}", self.kind, self.message)
            }
            (Some(sc), None) => write!(f, "{sc}: {}: {}", self.kind, self.message),
            (None, Some(st)) => write!(f, "step {st}: {}: {}", self.kind, self.message),
            (None, None) => write!(f, "{}: {}", self.kind, self.message),
        }
    }
}

/// Lifetime of one buffer slot: the step that creates it and the last
/// step that uses it (launch binding or download). The executor frees
/// each buffer right after its `last_use_step`, which is what makes the
/// static peak and the dynamic arena peak coincide exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotLiveness {
    /// Step that uploads or allocates the slot (first creation wins).
    pub def_step: Option<usize>,
    /// Last step that binds or downloads the slot.
    pub last_use_step: Option<usize>,
}

/// Static resource certificate for a plan: what the executor *must*
/// observe if the plan and the machine model agree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanPrediction {
    /// `(step index, bytes)` per host-to-device upload, in step order.
    pub h2d: Vec<(usize, usize)>,
    /// `(step index, bytes)` per device-to-host download, in step order.
    pub d2h: Vec<(usize, usize)>,
    /// Total upload bytes.
    pub h2d_total_bytes: usize,
    /// Total download bytes.
    pub d2h_total_bytes: usize,
    /// Liveness-based memory high-water mark.
    pub peak_resident_bytes: usize,
    /// Step at which the peak is reached (an `Upload`/`Alloc` step).
    pub peak_step: Option<usize>,
    /// `(kernel name, launch count)` in first-launch order.
    pub launches: Vec<(&'static str, usize)>,
}

impl PlanPrediction {
    /// Compare this certificate against the stats of a real run.
    /// Returns one message per discrepancy (empty = exact match).
    pub fn cross_check(&self, dynamic: &DynamicPlanStats) -> Vec<String> {
        let mut out = Vec::new();
        diff_transfers("H2D", &self.h2d, &dynamic.h2d, &mut out);
        diff_transfers("D2H", &self.d2h, &dynamic.d2h, &mut out);
        if self.peak_resident_bytes != dynamic.peak_resident_bytes {
            out.push(format!(
                "peak resident bytes: predicted {} != measured {}",
                self.peak_resident_bytes, dynamic.peak_resident_bytes
            ));
        }
        if self.launches.len() != dynamic.launches.len() {
            out.push(format!(
                "launches: predicted {} kernel(s) != measured {}",
                self.launches.len(),
                dynamic.launches.len()
            ));
        }
        for (&(pn, pc), &(mn, mc)) in self.launches.iter().zip(&dynamic.launches) {
            if pn != mn || pc != mc {
                out.push(format!(
                    "launches: predicted {pn} x{pc} != measured {mn} x{mc}"
                ));
            }
        }
        out
    }

    /// Serialize as a JSON object.
    pub fn to_json(&self) -> Json {
        let xfer = |v: &[(usize, usize)]| {
            Json::Arr(
                v.iter()
                    .map(|&(step, bytes)| {
                        Json::Obj(vec![
                            ("step".into(), Json::num(step as f64)),
                            ("bytes".into(), Json::num(bytes as f64)),
                        ])
                    })
                    .collect(),
            )
        };
        Json::Obj(vec![
            ("h2d_total_bytes".into(), Json::num(self.h2d_total_bytes as f64)),
            ("d2h_total_bytes".into(), Json::num(self.d2h_total_bytes as f64)),
            (
                "peak_resident_bytes".into(),
                Json::num(self.peak_resident_bytes as f64),
            ),
            ("peak_step".into(), opt_num(self.peak_step)),
            ("h2d".into(), xfer(&self.h2d)),
            ("d2h".into(), xfer(&self.d2h)),
            (
                "launches".into(),
                Json::Arr(
                    self.launches
                        .iter()
                        .map(|&(name, count)| {
                            Json::Obj(vec![
                                ("kernel".into(), Json::str(name)),
                                ("count".into(), Json::num(count as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// What the executor actually observed while running a plan — the
/// dynamic half of the [`PlanPrediction`] cross-check.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DynamicPlanStats {
    /// `(step index, bytes)` per upload actually performed.
    pub h2d: Vec<(usize, usize)>,
    /// `(step index, bytes)` per download actually performed.
    pub d2h: Vec<(usize, usize)>,
    /// Peak resident bytes reported by the device memory arena.
    pub peak_resident_bytes: usize,
    /// `(kernel name, launch count)` in first-launch order.
    pub launches: Vec<(&'static str, usize)>,
}

fn diff_transfers(
    label: &str,
    pred: &[(usize, usize)],
    meas: &[(usize, usize)],
    out: &mut Vec<String>,
) {
    if pred.len() != meas.len() {
        out.push(format!(
            "{label}: predicted {} transfer(s) != measured {}",
            pred.len(),
            meas.len()
        ));
    }
    for (&(ps, pb), &(ms, mb)) in pred.iter().zip(meas) {
        if ps != ms || pb != mb {
            out.push(format!(
                "{label}: predicted {pb} bytes at step {ps} != measured {mb} bytes at step {ms}"
            ));
        }
    }
}

fn opt_num(v: Option<usize>) -> Json {
    match v {
        Some(n) => Json::num(n as f64),
        None => Json::Null,
    }
}

/// Result of statically verifying one [`SolvePlan`] against one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Device the plan was certified against.
    pub device: &'static str,
    /// Every diagnostic found (empty = certified clean).
    pub findings: Vec<PlanFinding>,
    /// The static resource certificate the executor cross-checks.
    pub prediction: PlanPrediction,
    /// Per-slot lifetimes (indexed by slot), driving executor frees.
    pub liveness: Vec<SlotLiveness>,
}

impl VerifyReport {
    /// `true` when no diagnostic fired.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Serialize as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("device".into(), Json::str(self.device)),
            ("clean".into(), Json::Bool(self.is_clean())),
            (
                "findings".into(),
                Json::Arr(self.findings.iter().map(finding_json).collect()),
            ),
            ("prediction".into(), self.prediction.to_json()),
            (
                "liveness".into(),
                Json::Arr(
                    self.liveness
                        .iter()
                        .enumerate()
                        .map(|(slot, lv)| {
                            Json::Obj(vec![
                                ("slot".into(), Json::num(slot as f64)),
                                ("def_step".into(), opt_num(lv.def_step)),
                                ("last_use_step".into(), opt_num(lv.last_use_step)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn finding_json(f: &PlanFinding) -> Json {
    Json::Obj(vec![
        ("kind".into(), Json::str(f.kind.label())),
        ("step".into(), opt_num(f.step)),
        ("shard".into(), opt_num(f.shard)),
        ("chunk".into(), opt_num(f.chunk)),
        ("message".into(), Json::str(f.message.clone())),
    ])
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            let launches: usize = self.prediction.launches.iter().map(|&(_, c)| c).sum();
            write!(
                f,
                "verify {}: clean (peak resident {} bytes, {} B H2D, {} B D2H, {} launch(es))",
                self.device,
                self.prediction.peak_resident_bytes,
                self.prediction.h2d_total_bytes,
                self.prediction.d2h_total_bytes,
                launches
            )
        } else {
            write!(f, "verify {}: {} finding(s)", self.device, self.findings.len())?;
            for finding in &self.findings {
                write!(f, "\n  {finding}")?;
            }
            Ok(())
        }
    }
}

/// Result of verifying a [`ShardedPlan`]: the cross-device findings
/// plus one [`VerifyReport`] per shard (against that shard's device).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedVerifyReport {
    /// Cross-device findings (partition/consistency), shard-attributed
    /// where possible.
    pub findings: Vec<PlanFinding>,
    /// Per-shard verification, in device order.
    pub shards: Vec<VerifyReport>,
}

impl ShardedVerifyReport {
    /// `true` when there are no cross-device findings and every shard
    /// is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.shards.iter().all(VerifyReport::is_clean)
    }

    /// Every finding as a display string, shard-prefixed.
    pub fn messages(&self) -> Vec<String> {
        let mut out: Vec<String> = self.findings.iter().map(|f| f.to_string()).collect();
        for (i, sh) in self.shards.iter().enumerate() {
            out.extend(sh.findings.iter().map(|f| format!("shard {i}: {f}")));
        }
        out
    }

    /// Serialize as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("clean".into(), Json::Bool(self.is_clean())),
            (
                "findings".into(),
                Json::Arr(self.findings.iter().map(finding_json).collect()),
            ),
            (
                "shards".into(),
                Json::Arr(self.shards.iter().map(VerifyReport::to_json).collect()),
            ),
        ])
    }
}

impl fmt::Display for ShardedVerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(f, "verify sharded: clean across {} shard(s)", self.shards.len())?;
            for sh in &self.shards {
                write!(f, "\n  {sh}")?;
            }
            Ok(())
        } else {
            let msgs = self.messages();
            write!(f, "verify sharded: {} finding(s)", msgs.len())?;
            for m in &msgs {
                write!(f, "\n  {m}")?;
            }
            Ok(())
        }
    }
}

/// Per-slot lifetimes of `plan` (first creation, last binding or
/// download), tolerant of malformed plans (out-of-range slots are
/// ignored here and reported by [`verify_plan`]).
pub fn slot_liveness(plan: &SolvePlan) -> Vec<SlotLiveness> {
    let n = plan.buffers.len();
    let mut lv = vec![SlotLiveness::default(); n];
    for (i, step) in plan.steps.iter().enumerate() {
        match step {
            Step::Upload { slot, .. } | Step::Alloc { slot } => {
                if *slot < n && lv[*slot].def_step.is_none() {
                    lv[*slot].def_step = Some(i);
                }
            }
            Step::Launch(ls) => {
                for s in ls.op.binds() {
                    if s < n {
                        lv[s].last_use_step = Some(i);
                    }
                }
            }
            Step::Download { slot } => {
                if *slot < n {
                    lv[*slot].last_use_step = Some(i);
                }
            }
            Step::Convert { .. } | Step::ConvertBack { .. } => {}
        }
    }
    lv
}

/// Liveness-based memory high-water mark of `plan`: each buffer is
/// resident from its `Upload`/`Alloc` step until just after its last
/// use. Returns `(peak bytes, step reaching the peak)`. This is the
/// single memory model: [`SolvePlan::build`]'s OOM check and the
/// verifier's [`FindingKind::PeakMemoryOverflow`] both use it, and the
/// executor's arena reproduces it exactly by freeing buffers after
/// their last use.
pub fn peak_resident_bytes(plan: &SolvePlan) -> (usize, Option<usize>) {
    let lv = slot_liveness(plan);
    let nslots = plan.buffers.len();
    let bytes = |s: Slot| plan.buffers[s].elems * plan.elem_bytes;
    let mut ends: Vec<Vec<Slot>> = vec![Vec::new(); plan.steps.len()];
    for (s, l) in lv.iter().enumerate() {
        if l.def_step.is_some() {
            if let Some(last) = l.last_use_step {
                ends[last].push(s);
            }
        }
    }
    let mut resident = 0usize;
    let mut peak = 0usize;
    let mut peak_step = None;
    for (i, step) in plan.steps.iter().enumerate() {
        if let Step::Upload { slot, .. } | Step::Alloc { slot } = step {
            if *slot < nslots && lv[*slot].def_step == Some(i) {
                resident += bytes(*slot);
                if resident > peak {
                    peak = resident;
                    peak_step = Some(i);
                }
            }
        }
        for &s in &ends[i] {
            resident = resident.saturating_sub(bytes(s));
        }
    }
    (peak, peak_step)
}

/// Statically verify `plan` against `spec`. Always returns a full
/// report (findings, prediction, liveness) — callers decide whether
/// findings are fatal.
pub fn verify_plan(spec: &DeviceSpec, plan: &SolvePlan) -> VerifyReport {
    let nslots = plan.buffers.len();
    let name = |s: Slot| plan.buffers.get(s).map(|b| b.name).unwrap_or("?");
    let bytes = |s: Slot| plan.buffers[s].elems * plan.elem_bytes;

    #[derive(Clone, Copy, Default)]
    struct SlotState {
        created: Option<usize>,
        written: bool,
        used: bool,
    }
    let mut slots = vec![SlotState::default(); nslots];
    let mut findings: Vec<PlanFinding> = Vec::new();
    let push = |findings: &mut Vec<PlanFinding>,
                    kind: FindingKind,
                    step: Option<usize>,
                    message: String| {
        findings.push(PlanFinding {
            kind,
            step,
            shard: None,
            chunk: None,
            message,
        });
    };

    let mut convert_at: Option<usize> = None;
    let mut convert_back_at: Option<usize> = None;
    let mut download_at: Option<usize> = None;
    let mut h2d: Vec<(usize, usize)> = Vec::new();
    let mut d2h: Vec<(usize, usize)> = Vec::new();
    let mut launches: Vec<(&'static str, usize)> = Vec::new();

    for (i, step) in plan.steps.iter().enumerate() {
        match step {
            Step::Convert { to } => {
                if let Some(first) = convert_at {
                    push(
                        &mut findings,
                        FindingKind::LayoutMismatch,
                        Some(i),
                        format!("second layout conversion (first at step {first})"),
                    );
                }
                if *to != plan.layout {
                    push(
                        &mut findings,
                        FindingKind::LayoutMismatch,
                        Some(i),
                        format!(
                            "converts to {to:?} but the plan's device layout is {:?}",
                            plan.layout
                        ),
                    );
                }
                convert_at.get_or_insert(i);
            }
            Step::Upload { slot, source } => {
                // An elided plan (host layout == device layout) uploads
                // the caller's batch directly, with no Convert step.
                if convert_at.is_none() && plan.host_layout != plan.layout {
                    push(
                        &mut findings,
                        FindingKind::LayoutMismatch,
                        Some(i),
                        format!(
                            "uploads {} before the batch is converted to the device layout",
                            source.label()
                        ),
                    );
                }
                if *slot >= nslots {
                    push(
                        &mut findings,
                        FindingKind::SlotOutOfRange,
                        Some(i),
                        format!("upload targets slot {slot} but only {nslots} buffers are declared"),
                    );
                } else if let Some(prev) = slots[*slot].created {
                    push(
                        &mut findings,
                        FindingKind::DuplicateDef,
                        Some(i),
                        format!(
                            "slot {slot} ({}) was already created at step {prev}",
                            name(*slot)
                        ),
                    );
                } else {
                    slots[*slot].created = Some(i);
                    slots[*slot].written = true;
                    h2d.push((i, bytes(*slot)));
                }
            }
            Step::Alloc { slot } => {
                if *slot >= nslots {
                    push(
                        &mut findings,
                        FindingKind::SlotOutOfRange,
                        Some(i),
                        format!("alloc targets slot {slot} but only {nslots} buffers are declared"),
                    );
                } else if let Some(prev) = slots[*slot].created {
                    push(
                        &mut findings,
                        FindingKind::DuplicateDef,
                        Some(i),
                        format!(
                            "slot {slot} ({}) was already created at step {prev}",
                            name(*slot)
                        ),
                    );
                } else {
                    slots[*slot].created = Some(i);
                }
            }
            Step::Launch(ls) => {
                let reads = ls.op.reads();
                let writes = ls.op.writes();
                for &s in &reads {
                    if s >= nslots {
                        push(
                            &mut findings,
                            FindingKind::SlotOutOfRange,
                            Some(i),
                            format!(
                                "{} binds input slot {s} but only {nslots} buffers are declared",
                                ls.name
                            ),
                        );
                        continue;
                    }
                    match slots[s].created {
                        None => push(
                            &mut findings,
                            FindingKind::UseBeforeDef,
                            Some(i),
                            format!("{} reads slot {s} ({}) before it is created", ls.name, name(s)),
                        ),
                        Some(_) if !slots[s].written => push(
                            &mut findings,
                            FindingKind::UnwrittenScratchRead,
                            Some(i),
                            format!(
                                "{} reads slot {s} ({}): allocated scratch no prior step wrote",
                                ls.name,
                                name(s)
                            ),
                        ),
                        Some(_) => {}
                    }
                    slots[s].used = true;
                }
                for (wi, &s) in writes.iter().enumerate() {
                    if s >= nslots {
                        push(
                            &mut findings,
                            FindingKind::SlotOutOfRange,
                            Some(i),
                            format!(
                                "{} binds output slot {s} but only {nslots} buffers are declared",
                                ls.name
                            ),
                        );
                        continue;
                    }
                    if slots[s].created.is_none() {
                        push(
                            &mut findings,
                            FindingKind::UseBeforeDef,
                            Some(i),
                            format!(
                                "{} writes slot {s} ({}) before it is created",
                                ls.name,
                                name(s)
                            ),
                        );
                    }
                    if reads.contains(&s) {
                        push(
                            &mut findings,
                            FindingKind::AliasHazard,
                            Some(i),
                            format!(
                                "{} binds slot {s} ({}) as both input and output",
                                ls.name,
                                name(s)
                            ),
                        );
                    }
                    if writes[..wi].contains(&s) {
                        push(
                            &mut findings,
                            FindingKind::AliasHazard,
                            Some(i),
                            format!(
                                "{} writes slot {s} ({}) through two bindings",
                                ls.name,
                                name(s)
                            ),
                        );
                    }
                    slots[s].used = true;
                    if slots[s].created.is_some() {
                        slots[s].written = true;
                    }
                }
                match launches.iter_mut().find(|(n, _)| *n == ls.name) {
                    Some((_, c)) => *c += 1,
                    None => launches.push((ls.name, 1)),
                }
            }
            Step::Download { slot } => {
                download_at.get_or_insert(i);
                if *slot >= nslots {
                    push(
                        &mut findings,
                        FindingKind::SlotOutOfRange,
                        Some(i),
                        format!(
                            "download reads slot {slot} but only {nslots} buffers are declared"
                        ),
                    );
                } else {
                    match slots[*slot].created {
                        None => push(
                            &mut findings,
                            FindingKind::UseBeforeDef,
                            Some(i),
                            format!(
                                "downloads slot {slot} ({}) before it is created",
                                name(*slot)
                            ),
                        ),
                        Some(_) if !slots[*slot].written => push(
                            &mut findings,
                            FindingKind::UnwrittenScratchRead,
                            Some(i),
                            format!(
                                "downloads slot {slot} ({}) which no step wrote",
                                name(*slot)
                            ),
                        ),
                        Some(_) => {}
                    }
                    slots[*slot].used = true;
                    d2h.push((i, bytes(*slot)));
                }
            }
            Step::ConvertBack { from } => {
                if let Some(first) = convert_back_at {
                    push(
                        &mut findings,
                        FindingKind::LayoutMismatch,
                        Some(i),
                        format!("second convert-back (first at step {first})"),
                    );
                }
                if download_at.is_none() {
                    push(
                        &mut findings,
                        FindingKind::LayoutMismatch,
                        Some(i),
                        "convert-back before the solution is downloaded".into(),
                    );
                }
                if *from != plan.layout {
                    push(
                        &mut findings,
                        FindingKind::LayoutMismatch,
                        Some(i),
                        format!(
                            "converts back from {from:?} but the device layout is {:?}",
                            plan.layout
                        ),
                    );
                }
                convert_back_at.get_or_insert(i);
            }
        }
    }

    // Conversion pairing is only required when the caller's layout
    // differs from the device layout; elided plans legitimately have
    // neither step (the download already is the caller's layout).
    if plan.host_layout != plan.layout {
        if convert_at.is_none() {
            push(
                &mut findings,
                FindingKind::LayoutMismatch,
                None,
                "plan never converts the batch to the device layout".into(),
            );
        }
        if convert_back_at.is_none() {
            push(
                &mut findings,
                FindingKind::LayoutMismatch,
                None,
                "plan never converts the solution back to the caller's layout".into(),
            );
        }
    }
    for (s, st) in slots.iter().enumerate() {
        match st.created {
            Some(def) if !st.used => push(
                &mut findings,
                FindingKind::DanglingSlot,
                Some(def),
                format!(
                    "slot {s} ({}) is created but never bound by any launch or download",
                    name(s)
                ),
            ),
            None => push(
                &mut findings,
                FindingKind::DanglingSlot,
                None,
                format!("slot {s} ({}) is declared but never created", name(s)),
            ),
            Some(_) => {}
        }
    }

    let liveness = slot_liveness(plan);
    let (peak, peak_step) = peak_resident_bytes(plan);
    if peak > spec.global_mem_bytes {
        push(
            &mut findings,
            FindingKind::PeakMemoryOverflow,
            peak_step,
            format!(
                "peak resident device memory {peak} bytes exceeds {} global memory \
                 ({} bytes) for m = {}, n = {} at {}",
                spec.name, spec.global_mem_bytes, plan.m, plan.n, plan.precision
            ),
        );
    }

    let prediction = PlanPrediction {
        h2d_total_bytes: h2d.iter().map(|&(_, b)| b).sum(),
        d2h_total_bytes: d2h.iter().map(|&(_, b)| b).sum(),
        h2d,
        d2h,
        peak_resident_bytes: peak,
        peak_step,
        launches,
    };
    VerifyReport {
        device: spec.name,
        findings,
        prediction,
        liveness,
    }
}

/// Statically verify a [`ShardedPlan`] against its [`DeviceGroup`]:
/// every shard against its own device, plus the cross-device
/// invariants — shards tile `[0, m)` contiguously, disjointly, and
/// balanced (skew ≤ 1); geometry (`n`, scalar width) matches the
/// batch; the pinned reference decisions hold (a shard on the same
/// device model as the reference must keep `k`/mapping/fused exactly;
/// any shard's `k` may only clamp *down* from the reference).
pub fn verify_sharded_plan(group: &DeviceGroup, plan: &ShardedPlan) -> ShardedVerifyReport {
    let mut findings: Vec<PlanFinding> = Vec::new();
    let push = |findings: &mut Vec<PlanFinding>,
                    kind: FindingKind,
                    shard: Option<usize>,
                    message: String| {
        findings.push(PlanFinding {
            kind,
            step: None,
            shard,
            chunk: None,
            message,
        });
    };

    if plan.shards.is_empty() {
        push(
            &mut findings,
            FindingKind::ShardPartition,
            None,
            "sharded plan has no shards".into(),
        );
    }
    if plan.shards.len() != group.len() {
        push(
            &mut findings,
            FindingKind::ShardConsistency,
            None,
            format!(
                "plan has {} shard(s) but the group has {} device(s)",
                plan.shards.len(),
                group.len()
            ),
        );
    }
    if plan.reference.device != group.primary().name {
        push(
            &mut findings,
            FindingKind::ShardConsistency,
            None,
            format!(
                "reference plan was built for {} but the group's primary is {}",
                plan.reference.device,
                group.primary().name
            ),
        );
    }

    let mut cursor = 0usize;
    let mut min_count = usize::MAX;
    let mut max_count = 0usize;
    let mut shards = Vec::with_capacity(plan.shards.len());
    for (i, sh) in plan.shards.iter().enumerate() {
        if sh.device_index != i {
            push(
                &mut findings,
                FindingKind::ShardConsistency,
                Some(i),
                format!("device_index is {} (shards must be in device order)", sh.device_index),
            );
        }
        if sh.sys_start != cursor {
            push(
                &mut findings,
                FindingKind::ShardPartition,
                Some(i),
                format!(
                    "starts at system {} but {} systems are covered so far \
                     (shards must tile the batch contiguously and disjointly)",
                    sh.sys_start, cursor
                ),
            );
        }
        if sh.sys_count == 0 {
            push(
                &mut findings,
                FindingKind::ShardPartition,
                Some(i),
                "owns no systems".into(),
            );
        }
        cursor = sh.sys_start + sh.sys_count;
        min_count = min_count.min(sh.sys_count);
        max_count = max_count.max(sh.sys_count);

        if sh.plan.m != sh.sys_count {
            push(
                &mut findings,
                FindingKind::ShardConsistency,
                Some(i),
                format!(
                    "shard plan solves m = {} but the shard owns {} system(s)",
                    sh.plan.m, sh.sys_count
                ),
            );
        }
        if sh.plan.n != plan.n {
            push(
                &mut findings,
                FindingKind::ShardConsistency,
                Some(i),
                format!("shard plan has n = {} but the batch has n = {}", sh.plan.n, plan.n),
            );
        }
        if sh.plan.elem_bytes != plan.elem_bytes {
            push(
                &mut findings,
                FindingKind::ShardConsistency,
                Some(i),
                format!(
                    "shard plan is {} bytes/elem but the batch is {}",
                    sh.plan.elem_bytes, plan.elem_bytes
                ),
            );
        }
        if sh.plan.k > plan.reference.k {
            push(
                &mut findings,
                FindingKind::ShardConsistency,
                Some(i),
                format!(
                    "shard k = {} exceeds the pinned reference k = {} \
                     (per-device clamps may only lower k)",
                    sh.plan.k, plan.reference.k
                ),
            );
        }

        let spec = group
            .devices()
            .get(sh.device_index)
            .unwrap_or_else(|| group.primary());
        if group.devices().get(sh.device_index).is_none() {
            push(
                &mut findings,
                FindingKind::ShardConsistency,
                Some(i),
                format!(
                    "device_index {} is out of range for a {}-device group",
                    sh.device_index,
                    group.len()
                ),
            );
        } else {
            if sh.plan.device != spec.name {
                push(
                    &mut findings,
                    FindingKind::ShardConsistency,
                    Some(i),
                    format!(
                        "shard plan was built for {} but device {} is {}",
                        sh.plan.device, sh.device_index, spec.name
                    ),
                );
            }
            if spec.name == plan.reference.device {
                // Same device model as the reference: the pinned
                // decisions must hold exactly (heterogeneous devices may
                // legitimately re-clamp k down).
                if sh.plan.k != plan.reference.k {
                    push(
                        &mut findings,
                        FindingKind::ShardConsistency,
                        Some(i),
                        format!(
                            "shard on {} has k = {} but the pinned reference k is {}",
                            spec.name, sh.plan.k, plan.reference.k
                        ),
                    );
                }
                if sh.plan.mapping != plan.reference.mapping {
                    push(
                        &mut findings,
                        FindingKind::ShardConsistency,
                        Some(i),
                        format!(
                            "shard on {} resolved mapping {:?} but the pinned reference \
                             mapping is {:?}",
                            spec.name, sh.plan.mapping, plan.reference.mapping
                        ),
                    );
                }
                if sh.plan.fused != plan.reference.fused {
                    push(
                        &mut findings,
                        FindingKind::ShardConsistency,
                        Some(i),
                        format!(
                            "shard on {} has fused = {} but the pinned reference fused is {}",
                            spec.name, sh.plan.fused, plan.reference.fused
                        ),
                    );
                }
                if sh.plan.layout != plan.reference.layout {
                    push(
                        &mut findings,
                        FindingKind::ShardConsistency,
                        Some(i),
                        format!(
                            "shard on {} uses layout {:?} but the pinned reference \
                             layout is {:?}",
                            spec.name, sh.plan.layout, plan.reference.layout
                        ),
                    );
                }
            }
        }

        // Per-shard static verification against the shard's own device
        // (covers per-device peak memory among everything else).
        let mut report = verify_plan(spec, &sh.plan);
        for f in &mut report.findings {
            f.shard = Some(i);
        }
        shards.push(report);
    }

    if !plan.shards.is_empty() {
        if cursor != plan.m {
            push(
                &mut findings,
                FindingKind::ShardPartition,
                None,
                format!(
                    "shards cover [0, {cursor}) but the batch has m = {} systems",
                    plan.m
                ),
            );
        }
        if max_count > 0 && min_count != usize::MAX && max_count - min_count > 1 {
            push(
                &mut findings,
                FindingKind::ShardPartition,
                None,
                format!(
                    "shard sizes unbalanced: min {min_count}, max {max_count} (allowed skew 1)"
                ),
            );
        }
    }

    ShardedVerifyReport { findings, shards }
}

/// Result of verifying a [`DistributedPlan`]: the cross-device findings
/// plus one [`VerifyReport`] per chunk's interior plan (`None` for a
/// 2-row interface-only chunk), the reduced interface plan's report,
/// and — on the `D == 1` path — the identity plan's report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributedVerifyReport {
    /// Cross-device findings (partition, consistency, interface
    /// dataflow, reduced-system geometry), chunk-attributed where
    /// possible.
    pub findings: Vec<PlanFinding>,
    /// Per-chunk interior verification, in device order.
    pub chunks: Vec<Option<VerifyReport>>,
    /// Reduced interface plan verification (`D > 1` only).
    pub reduced: Option<VerifyReport>,
    /// Identity plan verification (`D == 1` only).
    pub identity: Option<VerifyReport>,
}

impl DistributedVerifyReport {
    /// `true` when there are no cross-device findings and every
    /// embedded plan report is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
            && self
                .chunks
                .iter()
                .flatten()
                .all(VerifyReport::is_clean)
            && self.reduced.as_ref().is_none_or(VerifyReport::is_clean)
            && self.identity.as_ref().is_none_or(VerifyReport::is_clean)
    }

    /// Every finding as a display string, chunk-prefixed.
    pub fn messages(&self) -> Vec<String> {
        let mut out: Vec<String> = self.findings.iter().map(|f| f.to_string()).collect();
        for (i, ch) in self.chunks.iter().enumerate() {
            if let Some(r) = ch {
                out.extend(r.findings.iter().map(|f| format!("chunk {i}: {f}")));
            }
        }
        if let Some(r) = &self.reduced {
            out.extend(r.findings.iter().map(|f| format!("reduced: {f}")));
        }
        if let Some(r) = &self.identity {
            out.extend(r.findings.iter().map(|f| format!("identity: {f}")));
        }
        out
    }

    /// Serialize as a JSON object.
    pub fn to_json(&self) -> Json {
        let opt = |r: &Option<VerifyReport>| r.as_ref().map_or(Json::Null, VerifyReport::to_json);
        Json::Obj(vec![
            ("clean".into(), Json::Bool(self.is_clean())),
            (
                "findings".into(),
                Json::Arr(self.findings.iter().map(finding_json).collect()),
            ),
            (
                "chunks".into(),
                Json::Arr(self.chunks.iter().map(opt).collect()),
            ),
            ("reduced".into(), opt(&self.reduced)),
            ("identity".into(), opt(&self.identity)),
        ])
    }
}

impl fmt::Display for DistributedVerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            if let Some(id) = &self.identity {
                return write!(f, "verify distributed: clean (identity path)\n  {id}");
            }
            write!(
                f,
                "verify distributed: clean across {} chunk(s)",
                self.chunks.len()
            )?;
            for ch in self.chunks.iter().flatten() {
                write!(f, "\n  {ch}")?;
            }
            if let Some(r) = &self.reduced {
                write!(f, "\n  reduced: {r}")?;
            }
            Ok(())
        } else {
            let msgs = self.messages();
            write!(f, "verify distributed: {} finding(s)", msgs.len())?;
            for m in &msgs {
                write!(f, "\n  {m}")?;
            }
            Ok(())
        }
    }
}

/// Statically verify a [`DistributedPlan`] against its [`DeviceGroup`]:
/// every chunk's interior plan against its own device, the reduced
/// interface plan against the primary, plus the cross-device
/// invariants — chunks tile `[0, n)` contiguously, disjointly, balanced
/// (skew ≤ 1), each at least 2 rows; the interface dataflow is sound
/// (a chunk with interior rows *must* carry an interior elimination
/// plan, else its interface coefficients are used before being
/// defined); the reduced system has exactly `2D` unknowns on the
/// primary device. On the `D == 1` path the identity plan is verified
/// and the chunk/reduced invariants are vacuous.
pub fn verify_distributed_plan(
    group: &DeviceGroup,
    plan: &DistributedPlan,
) -> DistributedVerifyReport {
    let mut findings: Vec<PlanFinding> = Vec::new();
    let push = |findings: &mut Vec<PlanFinding>,
                    kind: FindingKind,
                    chunk: Option<usize>,
                    message: String| {
        findings.push(PlanFinding {
            kind,
            step: None,
            shard: None,
            chunk,
            message,
        });
    };

    if let Some(identity) = &plan.identity {
        // D == 1 short-circuit: the identity plan must be the plain
        // single-device solve of the whole system, and the distributed
        // machinery must be absent.
        if !plan.chunks.is_empty() {
            push(
                &mut findings,
                FindingKind::ChunkConsistency,
                None,
                format!(
                    "identity plan present but {} chunk(s) are listed",
                    plan.chunks.len()
                ),
            );
        }
        if plan.reduced.is_some() {
            push(
                &mut findings,
                FindingKind::ChunkConsistency,
                None,
                "identity plan present but a reduced interface plan is listed".into(),
            );
        }
        if identity.m != 1 || identity.n != plan.n {
            push(
                &mut findings,
                FindingKind::ChunkConsistency,
                None,
                format!(
                    "identity plan solves {}x{} but the system is 1x{}",
                    identity.m, identity.n, plan.n
                ),
            );
        }
        if identity.elem_bytes != plan.elem_bytes {
            push(
                &mut findings,
                FindingKind::ChunkConsistency,
                None,
                format!(
                    "identity plan is {} bytes/elem but the system is {}",
                    identity.elem_bytes, plan.elem_bytes
                ),
            );
        }
        return DistributedVerifyReport {
            findings,
            chunks: Vec::new(),
            reduced: None,
            identity: Some(verify_plan(group.primary(), identity)),
        };
    }

    if plan.chunks.is_empty() {
        push(
            &mut findings,
            FindingKind::ChunkPartition,
            None,
            "distributed plan has no chunks and no identity plan".into(),
        );
    }
    if plan.chunks.len() != group.len() {
        push(
            &mut findings,
            FindingKind::ChunkConsistency,
            None,
            format!(
                "plan has {} chunk(s) but the group has {} device(s)",
                plan.chunks.len(),
                group.len()
            ),
        );
    }

    let mut cursor = 0usize;
    let mut min_count = usize::MAX;
    let mut max_count = 0usize;
    let mut chunks = Vec::with_capacity(plan.chunks.len());
    for (i, ch) in plan.chunks.iter().enumerate() {
        if ch.device_index != i {
            push(
                &mut findings,
                FindingKind::ChunkConsistency,
                Some(i),
                format!(
                    "device_index is {} (chunks must be in device order)",
                    ch.device_index
                ),
            );
        }
        if ch.row_start != cursor {
            push(
                &mut findings,
                FindingKind::ChunkPartition,
                Some(i),
                format!(
                    "starts at row {} but {} rows are covered so far \
                     (chunks must tile the system contiguously and disjointly)",
                    ch.row_start, cursor
                ),
            );
        }
        if ch.row_count < 2 {
            push(
                &mut findings,
                FindingKind::ChunkPartition,
                Some(i),
                format!(
                    "owns {} row(s): a chunk needs its 2-row interface pair",
                    ch.row_count
                ),
            );
        }
        cursor = ch.row_start + ch.row_count;
        min_count = min_count.min(ch.row_count);
        max_count = max_count.max(ch.row_count);

        // Interface dataflow: the reduced system reads the chunk's
        // modified interface coefficients, which only exist after the
        // interior elimination ran. A chunk with interior rows but no
        // interior plan would feed *unmodified* coefficients to the
        // reduced solve — use before def, across devices.
        match (&ch.interior, ch.row_count) {
            (None, rc) if rc > 2 => push(
                &mut findings,
                FindingKind::InterfaceExchange,
                Some(i),
                format!(
                    "chunk has {rc} rows but no interior elimination plan: its \
                     interface coefficients are used before being defined"
                ),
            ),
            (Some(_), 2) => push(
                &mut findings,
                FindingKind::InterfaceExchange,
                Some(i),
                "chunk is interface-only (2 rows) but carries an interior plan".into(),
            ),
            _ => {}
        }

        let spec = group
            .devices()
            .get(ch.device_index)
            .unwrap_or_else(|| group.primary());
        if group.devices().get(ch.device_index).is_none() {
            push(
                &mut findings,
                FindingKind::ChunkConsistency,
                Some(i),
                format!(
                    "device_index {} is out of range for a {}-device group",
                    ch.device_index,
                    group.len()
                ),
            );
        }
        let chunk_report = match &ch.interior {
            Some(ip) => {
                if ip.m != 1 {
                    push(
                        &mut findings,
                        FindingKind::ChunkConsistency,
                        Some(i),
                        format!("interior plan solves m = {}, not 1", ip.m),
                    );
                }
                if ch.row_count >= 2 && ip.n != ch.row_count - 2 {
                    push(
                        &mut findings,
                        FindingKind::ChunkConsistency,
                        Some(i),
                        format!(
                            "interior plan has n = {} but the chunk has {} interior row(s)",
                            ip.n,
                            ch.row_count - 2
                        ),
                    );
                }
                if ip.elem_bytes != plan.elem_bytes {
                    push(
                        &mut findings,
                        FindingKind::ChunkConsistency,
                        Some(i),
                        format!(
                            "interior plan is {} bytes/elem but the system is {}",
                            ip.elem_bytes, plan.elem_bytes
                        ),
                    );
                }
                if ip.device != spec.name {
                    push(
                        &mut findings,
                        FindingKind::ChunkConsistency,
                        Some(i),
                        format!(
                            "interior plan was built for {} but device {} is {}",
                            ip.device, ch.device_index, spec.name
                        ),
                    );
                }
                // Per-chunk static verification against the chunk's own
                // device (covers per-device peak memory among
                // everything else).
                let mut report = verify_plan(spec, ip);
                for f in &mut report.findings {
                    f.chunk = Some(i);
                }
                Some(report)
            }
            None => None,
        };
        chunks.push(chunk_report);
    }

    if !plan.chunks.is_empty() {
        if cursor != plan.n {
            push(
                &mut findings,
                FindingKind::ChunkPartition,
                None,
                format!(
                    "chunks cover [0, {cursor}) but the system has n = {} rows",
                    plan.n
                ),
            );
        }
        if max_count > 0 && min_count != usize::MAX && max_count - min_count > 1 {
            push(
                &mut findings,
                FindingKind::ChunkPartition,
                None,
                format!(
                    "chunk sizes unbalanced: min {min_count}, max {max_count} (allowed skew 1)"
                ),
            );
        }
    }

    let reduced = match &plan.reduced {
        Some(rp) => {
            if rp.m != 1 {
                push(
                    &mut findings,
                    FindingKind::ReducedSystem,
                    None,
                    format!("reduced plan solves m = {}, not 1", rp.m),
                );
            }
            if rp.n != 2 * plan.chunks.len() {
                push(
                    &mut findings,
                    FindingKind::ReducedSystem,
                    None,
                    format!(
                        "reduced plan solves n = {} but {} chunk(s) need {} \
                         interface unknowns",
                        rp.n,
                        plan.chunks.len(),
                        2 * plan.chunks.len()
                    ),
                );
            }
            if rp.elem_bytes != plan.elem_bytes {
                push(
                    &mut findings,
                    FindingKind::ReducedSystem,
                    None,
                    format!(
                        "reduced plan is {} bytes/elem but the system is {}",
                        rp.elem_bytes, plan.elem_bytes
                    ),
                );
            }
            if rp.device != group.primary().name {
                push(
                    &mut findings,
                    FindingKind::ChunkConsistency,
                    None,
                    format!(
                        "reduced plan was built for {} but the group's primary is {}",
                        rp.device,
                        group.primary().name
                    ),
                );
            }
            Some(verify_plan(group.primary(), rp))
        }
        None => {
            push(
                &mut findings,
                FindingKind::ReducedSystem,
                None,
                "distributed plan has no reduced interface plan (and no identity plan)".into(),
            );
            None
        }
    };

    DistributedVerifyReport {
        findings,
        chunks,
        reduced,
        identity: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::GpuSolverConfig;
    use crate::solver::MappingVariant;

    fn plan(m: usize, n: usize, bytes: usize) -> SolvePlan {
        SolvePlan::build(&DeviceSpec::gtx480(), &GpuSolverConfig::default(), m, n, bytes).unwrap()
    }

    #[test]
    fn planner_built_plans_verify_clean() {
        for (m, n, bytes) in [
            (2048usize, 128usize, 8usize), // k = 0: pure p-Thomas
            (64, 512, 8),                  // split pipeline
            (16, 1024, 4),
            (1, 16384, 8),
        ] {
            let p = plan(m, n, bytes);
            let report = verify_plan(&DeviceSpec::gtx480(), &p);
            assert!(report.is_clean(), "m={m} n={n}: {report}");
            assert_eq!(report.prediction.h2d.len(), 4);
            assert_eq!(report.prediction.d2h.len(), 1);
            assert_eq!(report.prediction.h2d_total_bytes, 4 * m * n * bytes);
            assert_eq!(report.prediction.d2h_total_bytes, m * n * bytes);
        }
    }

    #[test]
    fn fused_plan_verifies_clean() {
        let p = SolvePlan::build(
            &DeviceSpec::gtx480(),
            &GpuSolverConfig {
                fused: true,
                mapping: MappingVariant::BlockPerSystem,
                ..Default::default()
            },
            64,
            512,
            8,
        )
        .unwrap();
        let report = verify_plan(&DeviceSpec::gtx480(), &p);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.prediction.launches, vec![("fused_pcr_thomas", 1)]);
        // Fused pipeline: all 7 buffers live at the single launch.
        assert_eq!(report.prediction.peak_resident_bytes, 7 * 64 * 512 * 8);
    }

    #[test]
    fn peak_is_liveness_based_not_sum_of_allocs() {
        // Split pipeline: 11 buffers total, but a..d die at the PCR
        // launch before c'/d' are allocated — peak is 9 buffers, at the
        // last out-buffer alloc.
        let p = plan(64, 512, 8);
        assert_eq!(p.buffers.len(), 11);
        let (peak, step) = peak_resident_bytes(&p);
        assert_eq!(peak, 9 * 64 * 512 * 8);
        assert!(peak < p.device_bytes());
        // The peak step is an Alloc step (the 9th creation).
        assert!(matches!(p.steps[step.unwrap()], Step::Alloc { .. }));

        // k = 0 pipeline: all 7 buffers live at the launch.
        let p0 = plan(2048, 128, 8);
        assert_eq!(p0.buffers.len(), 7);
        let (peak0, _) = peak_resident_bytes(&p0);
        assert_eq!(peak0, 7 * 2048 * 128 * 8);
    }

    #[test]
    fn peak_overflow_fires_with_step_attribution() {
        let p = plan(64, 512, 8);
        let mut tiny = DeviceSpec::gtx480();
        tiny.global_mem_bytes = 1024;
        let report = verify_plan(&tiny, &p);
        let f = report
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::PeakMemoryOverflow)
            .expect("overflow finding");
        assert!(f.step.is_some());
        assert!(f.message.contains("global memory"), "{}", f.message);
    }

    #[test]
    fn sharded_plans_verify_clean() {
        for d in [1usize, 2, 4] {
            let group = DeviceGroup::homogeneous(DeviceSpec::gtx480(), d).unwrap();
            let sp =
                ShardedPlan::build(&group, &GpuSolverConfig::default(), 64, 512, 8).unwrap();
            let report = verify_sharded_plan(&group, &sp);
            assert!(report.is_clean(), "d={d}: {report}");
            assert_eq!(report.shards.len(), d);
        }
    }

    #[test]
    fn heterogeneous_sharded_plan_verifies_clean() {
        // The GTX280 shard legitimately re-clamps k down; the verifier
        // must accept that while still pinning same-model shards.
        let group =
            DeviceGroup::from_specs(vec![DeviceSpec::gtx480(), DeviceSpec::gtx280()]).unwrap();
        let sp = ShardedPlan::build(&group, &GpuSolverConfig::default(), 16, 1024, 8).unwrap();
        let report = verify_sharded_plan(&group, &sp);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn report_json_is_well_formed() {
        let p = plan(64, 512, 8);
        let report = verify_plan(&DeviceSpec::gtx480(), &p);
        let text = report.to_json().to_string();
        let doc = gpu_sim::json::parse(&text).unwrap();
        assert_eq!(doc.get("clean"), Some(&Json::Bool(true)));
        assert!(doc.get("prediction").is_some());
    }

    #[test]
    fn cross_check_reports_discrepancies() {
        let p = plan(64, 512, 8);
        let report = verify_plan(&DeviceSpec::gtx480(), &p);
        let mut stats = DynamicPlanStats {
            h2d: report.prediction.h2d.clone(),
            d2h: report.prediction.d2h.clone(),
            peak_resident_bytes: report.prediction.peak_resident_bytes,
            launches: report.prediction.launches.clone(),
        };
        assert!(report.prediction.cross_check(&stats).is_empty());
        stats.peak_resident_bytes += 8;
        stats.h2d[0].1 += 1;
        stats.launches[0].1 += 1;
        let mismatches = report.prediction.cross_check(&stats);
        assert_eq!(mismatches.len(), 3, "{mismatches:?}");
    }
}
