//! The plan executor: the single place where kernels are launched and
//! their artifacts collected.
//!
//! [`PlanExecutor::run`] walks a [`SolvePlan`] step by step — convert,
//! upload, allocate, launch, download, convert back — and owns the
//! per-launch bookkeeping the monolithic solver used to repeat at every
//! call site: sanitizer-violation collection, access-plan lint plus its
//! static-vs-dynamic counter cross-check, the phase-sum invariant
//! check, [`KernelReport`] construction, and finally the solve trace.
//! The zoo and the autotuner drive the same [`PlanExecutor::launch`]
//! path, so "how a launch's findings are gathered" is defined exactly
//! once.

use crate::buffers::GpuScalar;
use crate::kernels::fused::FusedKernel;
use crate::kernels::p_thomas::PThomasKernel;
use crate::kernels::tiled_pcr::TiledPcrKernel;
use crate::plan::{KernelOp, SolvePlan, Step};
use crate::solver::{GpuSolveReport, KernelReport};
use crate::verify::DynamicPlanStats;
use gpu_sim::timing::{time_kernel, TrafficSummary};
use gpu_sim::trace::Trace;
use gpu_sim::{
    launch_with, BlockKernel, BufId, DeviceSpec, ExecConfig, GpuMemory, Json, KernelStats,
    LaunchConfig, LintConfig, LintReport, Precision, Result, SanitizerViolation, SimError,
};
use tridiag_core::SystemBatch;

/// Runs plans (and standalone launches) against one device, collecting
/// every launch's artifacts in arrival order.
#[derive(Debug, Clone)]
pub struct PlanExecutor {
    spec: DeviceSpec,
    exec: ExecConfig,
    /// Per-kernel reports (timing, traffic, occupancy), in launch order.
    pub kernels: Vec<KernelReport>,
    /// Measured counters per launch, parallel to `kernels`.
    pub stats: Vec<KernelStats>,
    /// Sanitizer findings across every launch.
    pub violations: Vec<SanitizerViolation>,
    /// Static lint reports, one per launch that recorded a plan.
    pub lints: Vec<LintReport>,
    /// Static-vs-dynamic counter disagreements.
    pub lint_mismatches: Vec<String>,
    /// Phase-attribution counters that failed to sum to kernel totals,
    /// prefixed with the kernel name.
    pub phase_sum_mismatches: Vec<String>,
}

impl PlanExecutor {
    /// An executor for `spec` running launches under `exec`.
    pub fn new(spec: DeviceSpec, exec: ExecConfig) -> Self {
        Self {
            spec,
            exec,
            kernels: Vec::new(),
            stats: Vec::new(),
            violations: Vec::new(),
            lints: Vec::new(),
            lint_mismatches: Vec::new(),
            phase_sum_mismatches: Vec::new(),
        }
    }

    /// The device spec launches run against.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Launch one kernel and collect its artifacts: sanitizer
    /// violations, the access-plan lint and counter cross-check (when
    /// the exec config records plans), the phase-sum invariant, and the
    /// timing/traffic report.
    pub fn launch<S: GpuScalar, K: BlockKernel<S>>(
        &mut self,
        cfg: &LaunchConfig,
        kernel: &K,
        mem: &mut GpuMemory<S>,
    ) -> Result<()> {
        let precision = if <S as gpu_sim::Elem>::BYTES == 4 {
            Precision::F32
        } else {
            Precision::F64
        };
        let mut res = launch_with(&self.spec, cfg, &self.exec, kernel, mem)?;
        self.violations.append(&mut res.violations);
        if let Some(plan) = res.plan.take() {
            let lr = gpu_sim::lint(&plan, &LintConfig::default());
            self.lint_mismatches.extend(lr.cross_check(&res.stats));
            self.lints.push(lr);
        }
        for msg in res.stats.phase_sum_mismatches() {
            self.phase_sum_mismatches.push(format!("{}: {msg}", res.name));
        }
        self.kernels.push(KernelReport {
            timing: time_kernel(&self.spec, &res, precision),
            traffic: TrafficSummary::from_stats(&self.spec, &res.stats),
            shared_bytes: res.shared_bytes_per_block,
            blocks: res.stats.blocks,
        });
        self.stats.push(res.stats);
        Ok(())
    }

    /// Pop the most recent launch's report and measured counters.
    /// Errors if nothing has been launched (or everything was taken).
    pub fn take_last_launch(&mut self) -> Result<(KernelReport, KernelStats)> {
        match (self.kernels.pop(), self.stats.pop()) {
            (Some(kr), Some(st)) => Ok((kr, st)),
            _ => Err(SimError::InvalidPlan(
                "no launch recorded to take".into(),
            )),
        }
    }

    /// Pop the most recent launch's static lint report. Errors when the
    /// launch ran without plan recording (`exec.record_plan` off), so
    /// callers get a typed failure instead of a panic.
    pub fn take_last_lint(&mut self) -> Result<LintReport> {
        self.lints.pop().ok_or_else(|| {
            SimError::InvalidPlan(
                "no lint report recorded: launch ran without plan recording".into(),
            )
        })
    }

    /// Execute `plan` on `batch`: walk the step sequence, launch every
    /// kernel through [`PlanExecutor::launch`], and assemble the
    /// [`GpuSolveReport`] (carrying the plan itself) from this run's
    /// artifacts. The executor's collections keep accumulating across
    /// runs; the report only covers this one.
    pub fn run<S: GpuScalar>(
        &mut self,
        plan: &SolvePlan,
        batch: &SystemBatch<S>,
    ) -> Result<(Vec<S>, GpuSolveReport)> {
        if <S as gpu_sim::Elem>::BYTES != plan.elem_bytes {
            return Err(SimError::InvalidPlan(format!(
                "plan was built for {}-byte scalars but the batch holds {}-byte scalars",
                plan.elem_bytes,
                <S as gpu_sim::Elem>::BYTES
            )));
        }
        let (m, n) = (batch.num_systems(), batch.system_len());
        if m != plan.m || n != plan.n {
            return Err(SimError::InvalidPlan(format!(
                "plan was built for m = {}, n = {} but the batch is m = {m}, n = {n}",
                plan.m, plan.n
            )));
        }
        plan.validate().map_err(SimError::InvalidPlan)?;
        // Static certification gates execution: a plan with findings
        // never launches. The surviving report's prediction is then
        // cross-checked exactly against what this run measures.
        let verify = crate::verify::verify_plan(&self.spec, plan);
        if !verify.is_clean() {
            let msgs: Vec<String> = verify.findings.iter().map(|f| f.to_string()).collect();
            return Err(SimError::InvalidPlan(format!(
                "plan failed static verification: {}",
                msgs.join("; ")
            )));
        }
        // Buffers die right after their statically-computed last use, so
        // the arena's peak must land exactly on the verifier's
        // high-water mark.
        let mut free_at: Vec<Vec<usize>> = vec![Vec::new(); plan.steps.len()];
        for (s, lv) in verify.liveness.iter().enumerate() {
            if lv.def_step.is_some() {
                if let Some(last) = lv.last_use_step {
                    free_at[last].push(s);
                }
            }
        }
        let mut dynamic = DynamicPlanStats::default();

        // This run's artifacts start here; earlier runs stay behind.
        let first_kernel = self.kernels.len();
        let first_violation = self.violations.len();
        let first_lint = self.lints.len();
        let first_lint_mismatch = self.lint_mismatches.len();
        let first_phase_sum = self.phase_sum_mismatches.len();

        let mut mem: GpuMemory<S> = GpuMemory::new();
        let mut slots: Vec<BufId> = Vec::with_capacity(plan.buffers.len());
        let mut host: Option<SystemBatch<S>> = None;
        let mut downloaded: Option<Vec<S>> = None;
        let mut out: Option<Vec<S>> = None;
        for (i, step) in plan.steps.iter().enumerate() {
            match step {
                Step::Convert { to } => host = Some(batch.to_layout(*to)),
                Step::Upload { slot, source } => {
                    // Elided plans (host layout == device layout) have
                    // no Convert step: the batch uploads as-is, but
                    // only if it really is in the plan's device layout.
                    let src = match host.as_ref() {
                        Some(converted) => converted,
                        None if batch.layout() == plan.layout => batch,
                        None => {
                            return Err(SimError::InvalidPlan(format!(
                                "plan elides layout conversion but the batch is \
                                 {:?}, not the device layout {:?}",
                                batch.layout(),
                                plan.layout
                            )))
                        }
                    };
                    let (a, b, c, d) = src.arrays();
                    let arr = match source {
                        crate::plan::CoefArray::Lower => a,
                        crate::plan::CoefArray::Diag => b,
                        crate::plan::CoefArray::Upper => c,
                        crate::plan::CoefArray::Rhs => d,
                    };
                    debug_assert_eq!(slots.len(), *slot);
                    dynamic.h2d.push((i, arr.len() * <S as gpu_sim::Elem>::BYTES));
                    slots.push(mem.alloc_from(arr.to_vec()));
                }
                Step::Alloc { slot } => {
                    debug_assert_eq!(slots.len(), *slot);
                    slots.push(mem.alloc(plan.buffers[*slot].elems));
                }
                Step::Launch(ls) => {
                    let cfg = LaunchConfig::new(ls.name, ls.grid_blocks, ls.threads_per_block)
                        .with_regs(ls.regs_per_thread);
                    match &ls.op {
                        KernelOp::PThomas {
                            a,
                            b,
                            c,
                            d,
                            c_prime,
                            d_prime,
                            x,
                            map,
                        } => {
                            let kernel = PThomasKernel {
                                a: slots[*a],
                                b: slots[*b],
                                c: slots[*c],
                                d: slots[*d],
                                c_prime: slots[*c_prime],
                                d_prime: slots[*d_prime],
                                x: slots[*x],
                                map: *map,
                            };
                            self.launch(&cfg, &kernel, &mut mem)?;
                        }
                        KernelOp::TiledPcr {
                            input,
                            output,
                            n,
                            k,
                            sub_tile,
                            assignments,
                        } => {
                            let kernel = TiledPcrKernel {
                                input: input.map(|s| slots[s]),
                                output: output.map(|s| slots[s]),
                                n: *n,
                                k: *k,
                                sub_tile: *sub_tile,
                                assignments: assignments.clone(),
                            };
                            self.launch(&cfg, &kernel, &mut mem)?;
                        }
                        KernelOp::Fused {
                            input,
                            c_prime,
                            d_prime,
                            x,
                            n,
                            k,
                            sub_tile,
                            m,
                        } => {
                            let kernel = FusedKernel {
                                input: input.map(|s| slots[s]),
                                c_prime: slots[*c_prime],
                                d_prime: slots[*d_prime],
                                x: slots[*x],
                                n: *n,
                                k: *k,
                                sub_tile: *sub_tile,
                                m: *m,
                            };
                            self.launch(&cfg, &kernel, &mut mem)?;
                        }
                    }
                    match dynamic.launches.iter_mut().find(|(n, _)| *n == ls.name) {
                        Some((_, c)) => *c += 1,
                        None => dynamic.launches.push((ls.name, 1)),
                    }
                }
                Step::Download { slot } => {
                    let xs = mem.read(slots[*slot])?.to_vec();
                    dynamic.d2h.push((i, xs.len() * <S as gpu_sim::Elem>::BYTES));
                    downloaded = Some(xs);
                }
                Step::ConvertBack { from } => {
                    let xs = downloaded.as_ref().ok_or_else(|| {
                        SimError::InvalidPlan(
                            "convert-back step before the download".into(),
                        )
                    })?;
                    let mut o = vec![S::ZERO; batch.total_len()];
                    for sys in 0..m {
                        for row in 0..n {
                            o[batch.index(sys, row)] = xs[from.index(sys, row, m, n)];
                        }
                    }
                    out = Some(o);
                }
            }
            // Release every buffer whose last use was this step.
            for &s in &free_at[i] {
                mem.free(slots[s])?;
            }
        }
        let out = out.or(downloaded).ok_or_else(|| {
            SimError::InvalidPlan("plan produced no solution".into())
        })?;
        dynamic.peak_resident_bytes = mem.peak_resident_bytes();
        let verify_mismatches = verify.prediction.cross_check(&dynamic);

        let kernels = self.kernels[first_kernel..].to_vec();
        let trace = build_trace(&self.spec, plan, &kernels);
        let report = GpuSolveReport {
            k: plan.k,
            mapping: plan.mapping,
            fused: plan.fused,
            total_us: kernels.iter().map(|kr| kr.timing.total_us).sum(),
            kernels,
            precision: plan.precision,
            violations: self.violations[first_violation..].to_vec(),
            lints: self.lints[first_lint..].to_vec(),
            lint_mismatches: self.lint_mismatches[first_lint_mismatch..].to_vec(),
            phase_sum_mismatches: self.phase_sum_mismatches[first_phase_sum..].to_vec(),
            verify,
            verify_mismatches,
            trace,
            plan: plan.clone(),
            shards: Vec::new(),
            distributed: None,
        };
        Ok((out, report))
    }
}

/// Build the solve's span/event trace from the finished kernel
/// reports: pipeline decisions as instants at t = 0, then each launch
/// as a span on a cumulative modeled-time axis with its launch overhead
/// and per-phase children nested inside.
fn build_trace(spec: &DeviceSpec, plan: &SolvePlan, kernels: &[KernelReport]) -> Trace {
    let mut tr = Trace::new(format!("tridiag solve on {}", spec.name));
    let total: f64 = kernels.iter().map(|kr| kr.timing.total_us).sum();
    tr.span(
        "solve",
        "solver",
        0,
        0.0,
        total,
        vec![
            ("m".into(), Json::num(plan.m as f64)),
            ("n".into(), Json::num(plan.n as f64)),
            ("precision".into(), Json::str(plan.precision)),
        ],
    );
    tr.instant(
        "transition_rule",
        "solver",
        0,
        0.0,
        vec![
            ("policy".into(), Json::str(format!("{:?}", plan.config.policy))),
            ("m".into(), Json::num(plan.m as f64)),
            ("n".into(), Json::num(plan.n as f64)),
            ("parallelism".into(), Json::num(spec.parallelism() as f64)),
            ("k".into(), Json::num(plan.k)),
        ],
    );
    tr.instant(
        "grid_mapping",
        "solver",
        0,
        0.0,
        vec![
            ("mapping".into(), Json::str(format!("{:?}", plan.mapping))),
            ("fused".into(), Json::Bool(plan.fused)),
        ],
    );
    tr.instant(
        "buffer_setup",
        "solver",
        0,
        0.0,
        vec![
            ("device_elems".into(), Json::num(plan.device_elems() as f64)),
            ("device_bytes".into(), Json::num(plan.device_bytes() as f64)),
        ],
    );
    let mut cursor = 0.0f64;
    for kr in kernels {
        let t = &kr.timing;
        tr.span(
            format!("kernel:{}", t.name),
            "kernel",
            0,
            cursor,
            t.total_us,
            vec![
                ("blocks".into(), Json::num(kr.blocks as f64)),
                ("bound".into(), Json::str(format!("{:?}", t.bound))),
                ("occupancy".into(), Json::num(t.occupancy_fraction)),
                ("waves".into(), Json::num(t.waves)),
            ],
        );
        tr.span("launch_overhead", "kernel", 0, cursor, t.launch_us, Vec::new());
        let mut at = cursor + t.launch_us;
        for ph in &t.phases {
            tr.span(
                format!("phase:{}", ph.label),
                "phase",
                0,
                at,
                ph.us,
                vec![
                    ("bound".into(), Json::str(format!("{:?}", ph.bound))),
                    ("flops".into(), Json::num(ph.stats.flops as f64)),
                    ("global_bytes".into(), Json::num(ph.stats.global_bytes() as f64)),
                    (
                        "transactions".into(),
                        Json::num(ph.stats.global_transactions() as f64),
                    ),
                ],
            );
            at += ph.us;
        }
        cursor += t.total_us;
    }
    tr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::GpuSolverConfig;
    use tridiag_core::generators::random_batch;

    fn plan_for(m: usize, n: usize, bytes: usize) -> SolvePlan {
        SolvePlan::build(&DeviceSpec::gtx480(), &GpuSolverConfig::default(), m, n, bytes)
            .unwrap()
    }

    #[test]
    fn precision_mismatch_is_a_typed_error() {
        let plan = plan_for(8, 64, 8);
        let batch = random_batch::<f32>(8, 64, 1);
        let mut ex = PlanExecutor::new(DeviceSpec::gtx480(), ExecConfig::default());
        let err = ex.run(&plan, &batch).unwrap_err();
        assert!(matches!(err, SimError::InvalidPlan(_)), "{err:?}");
    }

    #[test]
    fn geometry_mismatch_is_a_typed_error() {
        let plan = plan_for(8, 64, 8);
        let batch = random_batch::<f64>(8, 128, 1);
        let mut ex = PlanExecutor::new(DeviceSpec::gtx480(), ExecConfig::default());
        let err = ex.run(&plan, &batch).unwrap_err();
        assert!(matches!(err, SimError::InvalidPlan(_)), "{err:?}");
    }

    #[test]
    fn malformed_plan_is_rejected_before_any_launch() {
        let mut plan = plan_for(8, 64, 8);
        plan.steps.retain(|s| !matches!(s, Step::Download { .. }));
        let batch = random_batch::<f64>(8, 64, 1);
        let mut ex = PlanExecutor::new(DeviceSpec::gtx480(), ExecConfig::default());
        let err = ex.run(&plan, &batch).unwrap_err();
        assert!(matches!(err, SimError::InvalidPlan(_)), "{err:?}");
        assert!(ex.kernels.is_empty());
    }

    #[test]
    fn take_last_lint_without_plan_recording_is_a_typed_error() {
        let plan = plan_for(32, 64, 8);
        let batch = random_batch::<f64>(32, 64, 1);
        let mut ex = PlanExecutor::new(DeviceSpec::gtx480(), ExecConfig::default());
        ex.run(&plan, &batch).unwrap();
        let err = ex.take_last_lint().unwrap_err();
        assert!(matches!(err, SimError::InvalidPlan(_)), "{err:?}");
        // The launch itself was recorded.
        assert!(ex.take_last_launch().is_ok());
        // ... and once drained, taking again is a typed error too.
        while ex.take_last_launch().is_ok() {}
        assert!(matches!(
            ex.take_last_launch().unwrap_err(),
            SimError::InvalidPlan(_)
        ));
    }

    #[test]
    fn executor_accumulates_across_runs_but_reports_slice_per_run() {
        let mut ex = PlanExecutor::new(DeviceSpec::gtx480(), ExecConfig::default());
        let plan = plan_for(32, 64, 8);
        let batch = random_batch::<f64>(32, 64, 1);
        let (_, r1) = ex.run(&plan, &batch).unwrap();
        let (_, r2) = ex.run(&plan, &batch).unwrap();
        assert_eq!(r1.kernels.len(), r2.kernels.len());
        assert_eq!(ex.kernels.len(), r1.kernels.len() + r2.kernels.len());
    }
}
