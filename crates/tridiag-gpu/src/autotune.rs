//! Empirical re-derivation of the algorithm-transition heuristic
//! (Table III) on the simulator.
//!
//! The paper: "we present empirical heuristic values that are optimized
//! on NVidia GTX480 … finding proper values for different situations can
//! be done only once and the effort can be quickly amortized". This
//! module is that one-off search: for each `M`, solve a representative
//! batch with every feasible `k` and keep the fastest. The `table3`
//! bench binary prints the result next to the paper's values.

use crate::buffers::GpuScalar;
use crate::executor::PlanExecutor;
use crate::plan::{ShardedPlan, SolvePlan};
use crate::sharded::ShardedExecutor;
use crate::solver::{GpuSolverConfig, LayoutChoice, MappingVariant};
use gpu_sim::{DeviceGroup, DeviceSpec, Result};
use tridiag_core::generators::random_batch;
use tridiag_core::transition::{max_k_for, TransitionPolicy};

/// One tuning measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunePoint {
    /// Number of systems.
    pub m: usize,
    /// System size used for the probe.
    pub n: usize,
    /// Fastest PCR step count found.
    pub best_k: u32,
    /// Modeled time at `best_k` (µs).
    pub best_us: f64,
    /// Modeled time at `k = 0` (pure p-Thomas), for reference.
    pub k0_us: f64,
}

/// The candidate plan for probing a fixed `k` on an `(m, n)` batch.
fn candidate_plan(
    spec: &DeviceSpec,
    m: usize,
    n: usize,
    k: u32,
    elem_bytes: usize,
    layout: LayoutChoice,
) -> Result<SolvePlan> {
    let config = GpuSolverConfig {
        policy: TransitionPolicy::Fixed(k),
        mapping: MappingVariant::Auto,
        layout,
        ..Default::default()
    };
    SolvePlan::build(spec, &config, m, n, elem_bytes)
}

/// Modeled time of solving an `(m, n)` batch with a fixed `k`.
pub fn modeled_time_for_k<S: GpuScalar>(
    spec: &DeviceSpec,
    m: usize,
    n: usize,
    k: u32,
    seed: u64,
) -> Result<f64> {
    let plan = candidate_plan(spec, m, n, k, <S as gpu_sim::Elem>::BYTES, LayoutChoice::Auto)?;
    let batch = random_batch::<S>(m, n, seed);
    let mut executor = PlanExecutor::new(spec.clone(), plan.config.exec);
    let (_, report) = executor.run(&plan, &batch)?;
    Ok(report.total_us)
}

/// Search `k ∈ 0..=k_max` for the fastest configuration at each `m`:
/// enumerate one candidate plan per feasible `k`, execute them all
/// uniformly through the plan executor on the same probe batch, and
/// rank by modeled time (earliest `k` wins ties).
pub fn tune<S: GpuScalar>(
    spec: &DeviceSpec,
    m_values: &[usize],
    n: usize,
    k_max: u32,
) -> Result<Vec<TunePoint>> {
    tune_with_layout::<S>(spec, m_values, n, k_max, LayoutChoice::Auto)
}

/// [`tune`] with the planner's layout choice pinned. Forcing
/// `Interleaved` collapses the search (every `k` candidate is the pure
/// p-Thomas plan, so `best_k` is always 0); forcing `Contiguous` ranks
/// the uncoalesced strawman at `k = 0` against the hybrid pipelines.
pub fn tune_with_layout<S: GpuScalar>(
    spec: &DeviceSpec,
    m_values: &[usize],
    n: usize,
    k_max: u32,
    layout: LayoutChoice,
) -> Result<Vec<TunePoint>> {
    let mut out = Vec::with_capacity(m_values.len());
    for &m in m_values {
        let cap = max_k_for(n).min(k_max);
        let candidates: Vec<(u32, SolvePlan)> = (0..=cap)
            .map(|k| {
                candidate_plan(spec, m, n, k, <S as gpu_sim::Elem>::BYTES, layout)
                    .map(|p| (k, p))
            })
            .collect::<Result<_>>()?;
        let batch = random_batch::<S>(m, n, 42 + m as u64);
        let mut best_k = 0;
        let mut best_us = f64::INFINITY;
        let mut k0_us = 0.0;
        for (k, plan) in &candidates {
            let mut executor = PlanExecutor::new(spec.clone(), plan.config.exec);
            let (_, report) = executor.run(plan, &batch)?;
            let us = report.total_us;
            if *k == 0 {
                k0_us = us;
            }
            if us < best_us {
                best_us = us;
                best_k = *k;
            }
        }
        out.push(TunePoint {
            m,
            n,
            best_k,
            best_us,
            k0_us,
        });
    }
    Ok(out)
}

/// [`tune`] across a [`DeviceGroup`]: each candidate `k` is planned as
/// a [`ShardedPlan`] (the fixed `k` pinned into every shard) and
/// executed through the [`ShardedExecutor`], so the ranking metric is
/// the group's modeled kernel wall-clock — max over devices, not a sum.
/// Candidate `k`s that cannot shard (`m <` device count never arises
/// here since the plan itself rejects it) propagate their typed error.
pub fn tune_sharded<S: GpuScalar + Send + Sync>(
    group: &DeviceGroup,
    m_values: &[usize],
    n: usize,
    k_max: u32,
) -> Result<Vec<TunePoint>> {
    tune_sharded_with_layout::<S>(group, m_values, n, k_max, LayoutChoice::Auto)
}

/// [`tune_sharded`] with the planner's layout choice pinned into every
/// shard (see [`tune_with_layout`] for the single-device semantics).
pub fn tune_sharded_with_layout<S: GpuScalar + Send + Sync>(
    group: &DeviceGroup,
    m_values: &[usize],
    n: usize,
    k_max: u32,
    layout: LayoutChoice,
) -> Result<Vec<TunePoint>> {
    let mut out = Vec::with_capacity(m_values.len());
    for &m in m_values {
        let cap = max_k_for(n).min(k_max);
        let bytes = <S as gpu_sim::Elem>::BYTES;
        let candidates: Vec<(u32, ShardedPlan)> = (0..=cap)
            .map(|k| {
                let config = GpuSolverConfig {
                    policy: TransitionPolicy::Fixed(k),
                    mapping: MappingVariant::Auto,
                    layout,
                    ..Default::default()
                };
                ShardedPlan::build(group, &config, m, n, bytes).map(|p| (k, p))
            })
            .collect::<Result<_>>()?;
        let batch = random_batch::<S>(m, n, 42 + m as u64);
        let mut best_k = 0;
        let mut best_us = f64::INFINITY;
        let mut k0_us = 0.0;
        for (k, plan) in &candidates {
            let executor = ShardedExecutor::new(group.clone(), plan.reference.config.exec);
            let (_, report) = executor.run(plan, &batch)?;
            let us = report.total_us;
            if *k == 0 {
                k0_us = us;
            }
            if us < best_us {
                best_us = us;
                best_k = *k;
            }
        }
        out.push(TunePoint {
            m,
            n,
            best_k,
            best_us,
            k0_us,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
    fn sharded_tuning_halves_the_wall_clock() {
        // Two devices, balanced shards: modeled kernel wall-clock is
        // the max over devices, so it must come in under one device
        // solving the full batch (same probe batch, same k grid).
        let spec = DeviceSpec::gtx480();
        let group = DeviceGroup::homogeneous(spec.clone(), 2).unwrap();
        let solo = tune::<f64>(&spec, &[64], 2048, 8).unwrap();
        let duo = tune_sharded::<f64>(&group, &[64], 2048, 8).unwrap();
        assert!(
            duo[0].best_us < solo[0].best_us,
            "sharded best {} us !< single-device best {} us",
            duo[0].best_us,
            solo[0].best_us
        );
        // D == 1 sharded tuning is the identity.
        let single = DeviceGroup::single(spec);
        let same = tune_sharded::<f64>(&single, &[64], 2048, 8).unwrap();
        assert_eq!(same[0].best_k, solo[0].best_k);
        assert_eq!(same[0].best_us, solo[0].best_us);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow simulation; run with --release")]
    fn tuned_k_decreases_with_m() {
        // The defining shape of Table III: fewer systems -> deeper PCR.
        let spec = DeviceSpec::gtx480();
        let points = tune::<f64>(&spec, &[1, 64, 4096], 2048, 8).unwrap();
        assert!(points[0].best_k >= points[1].best_k);
        assert!(points[1].best_k >= points[2].best_k);
        // Saturated batches want pure p-Thomas.
        assert_eq!(points[2].best_k, 0);
        // A lone system must use PCR (k = 0 would use one thread).
        assert!(points[0].best_k > 0);
        assert!(points[0].best_us < points[0].k0_us);
    }
}
