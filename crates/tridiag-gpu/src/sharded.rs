//! Multi-device sharded execution: one [`PlanExecutor`] per device on
//! real threads, merged into a single [`GpuSolveReport`].
//!
//! [`ShardedExecutor::run`] takes a [`ShardedPlan`] (which pinned the
//! reference plan's pipeline decisions into every shard — see
//! [`crate::plan::ShardedPlan::build`]) and:
//!
//! 1. slices the caller's batch into per-shard sub-batches,
//! 2. drives each shard's [`SolvePlan`](crate::plan::SolvePlan) on its
//!    own thread (vendored crossbeam scoped threads) with a private
//!    [`PlanExecutor`] against that shard's device spec,
//! 3. surfaces the first shard fault — by device index, so the error is
//!    deterministic — as one typed [`SimError`], discarding the other
//!    shards' partial results; a worker panic is converted to
//!    [`SimError::KernelFault`], never propagated,
//! 4. scatter-merges the per-shard solutions back into the caller's
//!    batch layout (bit-identical to the single-device path on a
//!    homogeneous group),
//! 5. replays each shard's steps onto its device's in-order stream
//!    ([`GroupTimeline`]) — modeled H2D copies, kernel launches, the
//!    D2H download — so the merged report's wall-clock is the **max**
//!    over devices, and emits a merged Chrome trace with one track
//!    (tid) per device,
//! 6. concatenates sanitizer/lint/phase-sum artifacts (mismatch lines
//!    prefixed `dev{i}: `) and exact per-shard counter totals into
//!    [`GpuSolveReport::shards`].
//!
//! A one-shard plan short-circuits to a plain [`PlanExecutor::run`] on
//! the primary device: `D == 1` *is* the single-device path, byte for
//! byte.

use crate::buffers::GpuScalar;
use crate::executor::PlanExecutor;
use crate::plan::{ShardedPlan, Step};
use crate::solver::{GpuSolveReport, ShardSummary};
use gpu_sim::group::copy_us;
use gpu_sim::trace::Trace;
use gpu_sim::{DeviceGroup, ExecConfig, GroupTimeline, Json, Result, SimError, StreamOp};
use tridiag_core::SystemBatch;

/// Drives a [`ShardedPlan`] across a [`DeviceGroup`], one thread per
/// shard, and merges the results.
#[derive(Debug, Clone)]
pub struct ShardedExecutor {
    group: DeviceGroup,
    exec: ExecConfig,
}

/// What one shard's worker thread hands back.
struct ShardRun<S> {
    x: Vec<S>,
    report: GpuSolveReport,
    flops: u64,
    global_transactions: u64,
    global_bytes: u64,
}

impl ShardedExecutor {
    /// An executor for `group` with execution options `exec` (applied
    /// to every shard's kernels — sanitizer, plan recording, …).
    pub fn new(group: DeviceGroup, exec: ExecConfig) -> Self {
        Self { group, exec }
    }

    /// The device group this executor drives.
    pub fn group(&self) -> &DeviceGroup {
        &self.group
    }

    /// Execute `plan` over `batch` and merge the shards. Returns the
    /// solutions in the batch's layout plus the merged report.
    ///
    /// Fails with [`SimError::InvalidPlan`] when the batch does not
    /// match the plan's geometry/width or the plan was built for a
    /// different device count; any shard failure (including a worker
    /// panic, reported as [`SimError::KernelFault`]) aborts the whole
    /// solve.
    pub fn run<S: GpuScalar + Send + Sync>(
        &self,
        plan: &ShardedPlan,
        batch: &SystemBatch<S>,
    ) -> Result<(Vec<S>, GpuSolveReport)> {
        if batch.num_systems() != plan.m || batch.system_len() != plan.n {
            return Err(SimError::InvalidPlan(format!(
                "batch is {}x{} but the sharded plan was built for {}x{}",
                batch.num_systems(),
                batch.system_len(),
                plan.m,
                plan.n
            )));
        }
        if <S as gpu_sim::Elem>::BYTES != plan.elem_bytes {
            return Err(SimError::InvalidPlan(format!(
                "batch scalar is {} bytes but the sharded plan was built for {}",
                <S as gpu_sim::Elem>::BYTES,
                plan.elem_bytes
            )));
        }
        if plan.shards.len() != self.group.len() {
            return Err(SimError::InvalidPlan(format!(
                "sharded plan has {} shard(s) but the group has {} device(s)",
                plan.shards.len(),
                self.group.len()
            )));
        }
        // Cross-device static verification gates execution: partition
        // coverage, pinned-decision consistency, and every shard's own
        // certificate against its device.
        let sharded_verify = crate::verify::verify_sharded_plan(&self.group, plan);
        if !sharded_verify.is_clean() {
            return Err(SimError::InvalidPlan(format!(
                "sharded plan failed static verification: {}",
                sharded_verify.messages().join("; ")
            )));
        }
        if plan.shards.len() == 1 {
            // D == 1 is the identity: the shard plan *is* the reference
            // plan, and this is exactly the single-device path.
            let mut ex = PlanExecutor::new(self.group.primary().clone(), self.exec);
            return ex.run(&plan.shards[0].plan, batch);
        }

        // Slice the batch into per-shard sub-batches (contiguous
        // layout; each shard re-converts to its plan's layout itself).
        let mut subs = Vec::with_capacity(plan.shards.len());
        for sh in &plan.shards {
            let mut systems = Vec::with_capacity(sh.sys_count);
            for sys in sh.sys_start..sh.sys_start + sh.sys_count {
                systems.push(batch.system(sys).map_err(|e| {
                    SimError::InvalidPlan(format!("extracting system {sys}: {e}"))
                })?);
            }
            subs.push(SystemBatch::from_systems(systems).map_err(|e| {
                SimError::InvalidPlan(format!(
                    "building shard {} sub-batch: {e}",
                    sh.device_index
                ))
            })?);
        }

        // One worker thread per shard, each with a private executor
        // against its own device spec. Joining captures panics instead
        // of propagating them.
        let exec = self.exec;
        let group = &self.group;
        let joined: Vec<Result<ShardRun<S>>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .shards
                .iter()
                .zip(&subs)
                .map(|(sh, sub)| {
                    let spec = group.devices()[sh.device_index].clone();
                    scope.spawn(move |_| -> Result<ShardRun<S>> {
                        let mut ex = PlanExecutor::new(spec, exec);
                        let (x, report) = ex.run(&sh.plan, sub)?;
                        Ok(ShardRun {
                            x,
                            report,
                            flops: ex.stats.iter().map(|s| s.total.flops).sum(),
                            global_transactions: ex
                                .stats
                                .iter()
                                .map(|s| s.total.global_transactions())
                                .sum(),
                            global_bytes: ex.stats.iter().map(|s| s.total.global_bytes()).sum(),
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(SimError::KernelFault("shard worker thread panicked".into()))
                    })
                })
                .collect()
        })
        .unwrap_or_else(|_| {
            vec![Err(SimError::KernelFault(
                "shard worker thread panicked".into(),
            ))]
        });

        // First fault by device index wins (deterministic); the other
        // shards' partial solutions are dropped here with `joined`.
        let mut runs = Vec::with_capacity(joined.len());
        for (d, r) in joined.into_iter().enumerate() {
            match r {
                Ok(run) => runs.push(run),
                Err(SimError::KernelFault(msg)) => {
                    return Err(SimError::KernelFault(format!("shard {d}: {msg}")))
                }
                Err(other) => return Err(other),
            }
        }

        // Scatter-merge the shard solutions into the caller's layout.
        let mut out = vec![S::ZERO; batch.total_len()];
        for (sh, (sub, run)) in plan.shards.iter().zip(subs.iter().zip(&runs)) {
            for local in 0..sh.sys_count {
                for row in 0..plan.n {
                    out[batch.index(sh.sys_start + local, row)] = run.x[sub.index(local, row)];
                }
            }
        }

        // Replay each shard's plan onto its device's in-order stream:
        // uploads, launches (modeled kernel time), the download.
        let mut timeline = GroupTimeline::new(&self.group);
        for (sh, run) in plan.shards.iter().zip(&runs) {
            let stream = timeline.stream_mut(sh.device_index);
            let mut kernel_idx = 0usize;
            for step in &sh.plan.steps {
                match step {
                    Step::Upload { slot, source } => {
                        let bytes = sh.plan.buffers[*slot].elems * sh.plan.elem_bytes;
                        stream.record(
                            StreamOp::CopyH2D,
                            format!("h2d:{}", source.label()),
                            copy_us(bytes),
                            bytes,
                        );
                    }
                    Step::Launch(ls) => {
                        let kr = run.report.kernels.get(kernel_idx).ok_or_else(|| {
                            SimError::InvalidPlan(
                                "shard report is missing a kernel launch".into(),
                            )
                        })?;
                        stream.record(StreamOp::Launch, ls.name, kr.timing.total_us, 0);
                        kernel_idx += 1;
                    }
                    Step::Download { slot } => {
                        let bytes = sh.plan.buffers[*slot].elems * sh.plan.elem_bytes;
                        stream.record(
                            StreamOp::CopyD2H,
                            format!("d2h:{}", sh.plan.buffers[*slot].name),
                            copy_us(bytes),
                            bytes,
                        );
                    }
                    _ => {}
                }
            }
        }
        let wall_clock = timeline.wall_clock_us();
        // Kernel-only wall-clock: comparable with a single-device
        // report's total_us, which never includes copies either.
        let kernel_wall = timeline.kernel_wall_clock_us();

        // Merged Chrome trace: one track (tid) per device; phase
        // children keep their bit-exact durations, offset onto the
        // device's stream timeline.
        let mut trace = Trace::new(format!(
            "tridiag sharded solve on {}",
            self.group.label()
        ));
        trace.span(
            "sharded_solve",
            "solver",
            0,
            0.0,
            wall_clock,
            vec![
                ("m".into(), Json::num(plan.m as f64)),
                ("n".into(), Json::num(plan.n as f64)),
                ("precision".into(), Json::str(plan.precision)),
                ("devices".into(), Json::num(plan.shards.len() as f64)),
                ("kernel_wall_us".into(), Json::num(kernel_wall)),
                ("serialized_us".into(), Json::num(timeline.serialized_us())),
            ],
        );
        trace.instant(
            "partition",
            "solver",
            0,
            0.0,
            vec![
                ("devices".into(), Json::num(plan.shards.len() as f64)),
                (
                    "shards".into(),
                    Json::str(
                        plan.shards
                            .iter()
                            .map(|sh| format!("{}:{}", sh.device_index, sh.sys_count))
                            .collect::<Vec<_>>()
                            .join("+"),
                    ),
                ),
            ],
        );
        trace.instant(
            "transition_rule",
            "solver",
            0,
            0.0,
            vec![
                ("k".into(), Json::num(plan.reference.k)),
                ("pinned_from".into(), Json::str(plan.reference.device)),
            ],
        );
        trace.instant(
            "grid_mapping",
            "solver",
            0,
            0.0,
            vec![
                (
                    "mapping".into(),
                    Json::str(format!("{:?}", plan.reference.mapping)),
                ),
                ("fused".into(), Json::Bool(plan.reference.fused)),
            ],
        );
        for (sh, run) in plan.shards.iter().zip(&runs) {
            let tid = sh.device_index as u32;
            let stream = &timeline.streams()[sh.device_index];
            let mut kernels = run.report.kernels.iter();
            for ev in &stream.events {
                match ev.op {
                    StreamOp::CopyH2D | StreamOp::CopyD2H => {
                        trace.span(
                            ev.name.clone(),
                            "copy",
                            tid,
                            ev.start_us,
                            ev.dur_us,
                            vec![("bytes".into(), Json::num(ev.bytes as f64))],
                        );
                    }
                    StreamOp::Launch => {
                        let kr = kernels.next().expect("one report per launch event");
                        let t = &kr.timing;
                        trace.span(
                            format!("kernel:{}", t.name),
                            "kernel",
                            tid,
                            ev.start_us,
                            t.total_us,
                            vec![
                                ("blocks".into(), Json::num(kr.blocks as f64)),
                                ("bound".into(), Json::str(format!("{:?}", t.bound))),
                                ("occupancy".into(), Json::num(t.occupancy_fraction)),
                                ("waves".into(), Json::num(t.waves)),
                            ],
                        );
                        trace.span(
                            "launch_overhead",
                            "kernel",
                            tid,
                            ev.start_us,
                            t.launch_us,
                            Vec::new(),
                        );
                        let mut at = ev.start_us + t.launch_us;
                        for ph in &t.phases {
                            trace.span(
                                format!("phase:{}", ph.label),
                                "phase",
                                tid,
                                at,
                                ph.us,
                                vec![
                                    ("bound".into(), Json::str(format!("{:?}", ph.bound))),
                                    ("flops".into(), Json::num(ph.stats.flops as f64)),
                                    (
                                        "global_bytes".into(),
                                        Json::num(ph.stats.global_bytes() as f64),
                                    ),
                                    (
                                        "transactions".into(),
                                        Json::num(ph.stats.global_transactions() as f64),
                                    ),
                                ],
                            );
                            at += ph.us;
                        }
                    }
                }
            }
        }

        // Merge the per-shard artifacts into one report.
        let mut kernels = Vec::new();
        let mut violations = Vec::new();
        let mut lints = Vec::new();
        let mut lint_mismatches = Vec::new();
        let mut phase_sum_mismatches = Vec::new();
        let mut verify_mismatches = Vec::new();
        let mut summaries = Vec::with_capacity(runs.len());
        for (sh, run) in plan.shards.iter().zip(&runs) {
            let d = sh.device_index;
            summaries.push(ShardSummary {
                device: sh.plan.device,
                device_index: d,
                sys_start: sh.sys_start,
                sys_count: sh.sys_count,
                k: sh.plan.k,
                kernel_us: run.report.total_us,
                completion_us: timeline.streams()[d].completion_us(),
                flops: run.flops,
                global_transactions: run.global_transactions,
                global_bytes: run.global_bytes,
            });
            kernels.extend(run.report.kernels.iter().cloned());
            violations.extend(run.report.violations.iter().cloned());
            lints.extend(run.report.lints.iter().cloned());
            lint_mismatches.extend(
                run.report
                    .lint_mismatches
                    .iter()
                    .map(|s| format!("dev{d}: {s}")),
            );
            phase_sum_mismatches.extend(
                run.report
                    .phase_sum_mismatches
                    .iter()
                    .map(|s| format!("dev{d}: {s}")),
            );
            verify_mismatches.extend(
                run.report
                    .verify_mismatches
                    .iter()
                    .map(|s| format!("dev{d}: {s}")),
            );
        }
        let report = GpuSolveReport {
            k: plan.reference.k,
            mapping: plan.reference.mapping,
            fused: plan.reference.fused,
            kernels,
            total_us: kernel_wall,
            precision: plan.reference.precision,
            violations,
            lints,
            lint_mismatches,
            phase_sum_mismatches,
            // The merged report carries the reference plan, so its
            // certificate is the reference plan's on the primary device;
            // per-shard prediction mismatches merge dev-prefixed.
            verify: crate::verify::verify_plan(self.group.primary(), &plan.reference),
            verify_mismatches,
            trace,
            plan: plan.reference.clone(),
            shards: summaries,
            distributed: None,
        };
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{GpuSolverConfig, GpuTridiagSolver};
    use gpu_sim::DeviceSpec;
    use tridiag_core::generators::random_batch;

    fn group_of(d: usize) -> DeviceGroup {
        DeviceGroup::homogeneous(DeviceSpec::gtx480(), d).unwrap()
    }

    #[test]
    fn small_sharded_solve_is_bit_identical_to_single_device() {
        let batch = random_batch::<f64>(8, 64, 21);
        let solver = GpuTridiagSolver::gtx480();
        let (x1, r1) = solver.solve_batch(&batch).unwrap();
        let (x2, r2) = solver.solve_batch_group(&group_of(2), &batch).unwrap();
        assert_eq!(x1, x2, "sharded solutions must be bit-identical");
        assert_eq!(r2.shards.len(), 2);
        assert_eq!(r2.k, r1.k);
        assert!(r2.total_us <= r1.total_us + 1e-9);
    }

    #[test]
    fn single_device_group_is_the_identity_path() {
        let batch = random_batch::<f64>(8, 64, 22);
        let solver = GpuTridiagSolver::gtx480();
        let (x1, r1) = solver.solve_batch(&batch).unwrap();
        let (x2, r2) = solver
            .solve_batch_group(&DeviceGroup::single(DeviceSpec::gtx480()), &batch)
            .unwrap();
        assert_eq!(x1, x2);
        assert_eq!(r1, r2, "D == 1 must be byte-identical, report and all");
        assert!(r2.shards.is_empty());
    }

    #[test]
    fn geometry_mismatch_is_a_typed_error() {
        let group = group_of(2);
        let plan = ShardedPlan::build(&group, &GpuSolverConfig::default(), 8, 64, 8).unwrap();
        let wrong = random_batch::<f64>(8, 32, 23);
        let err = ShardedExecutor::new(group.clone(), ExecConfig::default())
            .run(&plan, &wrong)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidPlan(_)), "{err:?}");

        // Plan built for a 2-device group, executor driving 4 devices.
        let err = ShardedExecutor::new(group_of(4), ExecConfig::default())
            .run(&plan, &random_batch::<f64>(8, 64, 23))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidPlan(_)), "{err:?}");
    }

    #[test]
    fn shard_summaries_cover_the_batch() {
        let batch = random_batch::<f64>(10, 64, 24);
        let solver = GpuTridiagSolver::gtx480();
        let (_, r) = solver.solve_batch_group(&group_of(4), &batch).unwrap();
        assert_eq!(r.shards.len(), 4);
        let total: usize = r.shards.iter().map(|s| s.sys_count).sum();
        assert_eq!(total, 10);
        assert_eq!(r.shards[0].sys_start, 0);
        for w in r.shards.windows(2) {
            assert_eq!(w[0].sys_start + w[0].sys_count, w[1].sys_start);
        }
        for s in &r.shards {
            assert!(s.flops > 0);
            assert!(s.completion_us > s.kernel_us, "copies add stream time");
        }
    }
}
