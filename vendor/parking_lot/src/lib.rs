//! Offline stand-in for `parking_lot`: poison-free `Mutex`/`RwLock`
//! wrappers over `std::sync`, with the parking_lot calling convention
//! (`lock()` returns the guard directly).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion without lock poisoning: a panicked holder simply
/// releases the lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// New unlocked mutex.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// New unlocked lock.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
