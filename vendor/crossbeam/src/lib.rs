//! Offline stand-in for the `crossbeam` crate: scoped threads only,
//! implemented over `std::thread::scope` (stable since Rust 1.63).

pub mod thread {
    //! `crossbeam::thread`-compatible scoped spawning.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle passed to [`scope`] closures; spawned closures receive a
    /// reference to it as their argument (crossbeam convention).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; it may borrow from the enclosing
        /// stack frame and is joined before [`scope`] returns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined
    /// before this returns. A child panic is returned as `Err` (as in
    /// crossbeam) rather than propagated.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_borrow_stack_data() {
            let counter = AtomicUsize::new(0);
            super::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            })
            .unwrap();
            assert_eq!(counter.load(Ordering::Relaxed), 4);
        }

        #[test]
        fn child_panic_becomes_err() {
            let r = super::scope(|scope| {
                scope.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
