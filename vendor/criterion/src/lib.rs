//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro + builder surface the workspace benches use
//! (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`) as a plain wall-clock harness: warm up,
//! take `sample_size` timed samples, print the median ns/iter. No
//! statistics machinery, no HTML reports — enough to compare hot paths
//! offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample iteration driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` back-to-back invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Work-rate label attached to a group (printed alongside timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_bench("", &id.to_string(), self.sample_size, None, f);
        self
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the work-rate label for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timed samples per bench (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_bench(&self.name, &id.to_string(), self.sample_size, self.throughput, f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&self.name, &id.to_string(), self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: run single iterations until ~20 ms total or 10 runs,
    // whichever first, to pick an iteration count of ~5 ms per sample.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let mut est = Duration::ZERO;
    let mut runs = 0u32;
    while est < Duration::from_millis(20) && runs < 10 {
        f(&mut b);
        est = est.max(b.elapsed);
        runs += 1;
    }
    let per_iter = est.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bench = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bench);
        samples.push(bench.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.1} Melem/s", n as f64 / median * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:.1} MiB/s", n as f64 / median * 1e9 / (1 << 20) as f64)
        }
        None => String::new(),
    };
    eprintln!("  {label:<40} {median:>12.1} ns/iter  [{lo:.1} .. {hi:.1}]{rate}");
}

/// Bundle bench functions into a callable group, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(10));
        let mut hits = 0u64;
        group.bench_function("count", |b| b.iter(|| hits += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 42), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(hits > 0);
        c.bench_function("free", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
