//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the (small) subset of the `rand 0.8` API the workspace
//! actually uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over primitive ranges, and `Rng::gen_bool`.
//!
//! Streams are deterministic (xoshiro256++ seeded via SplitMix64) but
//! are **not** bit-compatible with upstream `rand` — every consumer in
//! this workspace only requires seeded determinism, never a specific
//! stream.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform u64 source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types `Rng::gen_range` can sample from (a sub-range of a primitive).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// The user-facing sampling interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, per Blackman/Vigna.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let differs = (0..100).any(|_| a.gen_range(0u64..u64::MAX) != c.gen_range(0u64..u64::MAX));
        assert!(differs);
    }

    #[test]
    fn ranges_are_honored() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
            let u = rng.gen_range(10usize..=12);
            assert!((10..=12).contains(&u));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads = {heads}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
