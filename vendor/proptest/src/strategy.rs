//! The [`Strategy`] trait and primitive-range implementations.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking — a
/// strategy is just a deterministic sampler over the runner's RNG.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy always yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident => $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A => 0, B => 1);
tuple_strategy!(A => 0, B => 1, C => 2);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
float_range_strategy!(f32, f64);
