//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x surface this workspace
//! uses: the [`proptest!`] macro, range/`any`/`select`/`collection::vec`
//! strategies, `prop_assert*` / `prop_assume!`, and
//! [`test_runner::ProptestConfig`]. Cases are drawn from a deterministic
//! RNG seeded by the test name, so failures reproduce exactly on re-run.
//! Shrinking is not implemented — on failure the offending inputs are
//! printed instead.

pub mod strategy;

pub mod test_runner {
    //! Case-loop driver and its configuration.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The RNG strategies draw from.
    pub type TestRng = StdRng;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Give up after this many `prop_assume!` rejections.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    /// Why a case did not complete: rejected by `prop_assume!`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case's inputs failed an assumption; draw new ones.
        Reject,
    }

    /// Drives the case loop for one `proptest!` test function.
    #[derive(Debug)]
    pub struct TestRunner {
        rng: TestRng,
        rejects: u32,
        max_global_rejects: u32,
    }

    impl TestRunner {
        /// Runner with a stream derived deterministically from `name`.
        pub fn new(config: &ProptestConfig, name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            Self {
                rng: TestRng::seed_from_u64(h),
                rejects: 0,
                max_global_rejects: config.max_global_rejects,
            }
        }

        /// The RNG for drawing this case's inputs.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }

        /// Record a case outcome; `Err(Reject)` does not count towards
        /// the case budget but is bounded globally.
        pub fn finish_case(&mut self, result: Result<(), TestCaseError>) -> bool {
            match result {
                Ok(()) => true,
                Err(TestCaseError::Reject) => {
                    self.rejects += 1;
                    assert!(
                        self.rejects <= self.max_global_rejects,
                        "too many prop_assume! rejections ({})",
                        self.rejects
                    );
                    false
                }
            }
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length bound accepted by [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Strategies drawing from explicit value sets.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy choosing uniformly from `options` (must be non-empty).
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty option set");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-range strategies for primitives.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<A>(PhantomData<A>);

    /// Full-range strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }
}

pub mod prelude {
    //! Glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of the crate root (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property tests: each function draws its arguments from the
/// given strategies and runs its body for `config.cases` cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — one test function per entry.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($p:pat in $s:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(&config, stringify!($name));
            let mut passed = 0u32;
            while passed < config.cases {
                $(let $p = $crate::strategy::Strategy::sample(&($s), runner.rng());)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if runner.finish_case(outcome) {
                    passed += 1;
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Assert inside a proptest body (plain assert; inputs are
/// reproducible from the deterministic per-test stream).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Reject the current case (its inputs don't satisfy a precondition)
/// and draw fresh ones without counting against the case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_assume(n in 8usize..100, k in 1u32..4, seed in any::<u64>()) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n >= 8 && n < 100);
            prop_assert!(k >= 1 && k < 4);
            let _ = seed;
        }

        #[test]
        fn collections_and_select(
            mut v in prop::collection::vec(0usize..1000, 1..=32),
            pick in prop::sample::select(vec![4usize, 8]),
        ) {
            prop_assert!(!v.is_empty() && v.len() <= 32);
            prop_assert!(v.iter().all(|&x| x < 1000));
            prop_assert!(pick == 4 || pick == 8);
            v.push(pick);
            prop_assert_ne!(v.len(), 0);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        use crate::strategy::Strategy;
        let cfg = ProptestConfig::default();
        let mut r1 = crate::test_runner::TestRunner::new(&cfg, "x");
        let mut r2 = crate::test_runner::TestRunner::new(&cfg, "x");
        let s = 0usize..1_000_000;
        for _ in 0..64 {
            assert_eq!(s.sample(r1.rng()), s.sample(r2.rng()));
        }
    }
}
