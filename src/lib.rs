//! # scalable-tridiag
//!
//! Umbrella crate for the Rust reproduction of Kim, Wu, Chang & Hwu,
//! *"A Scalable Tridiagonal Solver for GPUs"* (ICPP 2011): a hybrid
//! tiled-PCR + p-Thomas tridiagonal solver, a functional GPU execution
//! simulator to run it on, CPU baselines, and the full reproduction
//! harness for every table and figure in the paper.
//!
//! Re-exports the four member crates; see each for details:
//!
//! - [`tridiag_core`] — the algorithms (Thomas, CR, PCR, RD, tiled PCR
//!   with the buffered sliding window, the hybrid, cyclic systems, the
//!   cost model, conditioning diagnostics).
//! - [`gpu_sim`] — the GPU simulator substrate.
//! - [`tridiag_gpu`] — the paper's kernels and solver on the simulator,
//!   plus the Davidson and Zhang baselines.
//! - [`cpu_ref`] — sequential and thread-pooled CPU solvers (the MKL
//!   `gtsv` stand-ins).
//!
//! ## Unified engine API
//!
//! [`BatchSolver`] puts every engine behind one trait so applications
//! can switch between the CPU reference and the modeled GPU (or compare
//! them) without changing call sites:
//!
//! ```
//! use scalable_tridiag::{BatchSolver, CpuSequential, CpuThreaded, SimulatedGpu};
//! use scalable_tridiag::tridiag_core::generators;
//!
//! let batch = generators::random_batch::<f64>(16, 256, 7);
//! for engine in [
//!     &CpuSequential as &dyn BatchSolver<f64>,
//!     &CpuThreaded::per_cpu(),
//!     &SimulatedGpu::gtx480(),
//! ] {
//!     let x = engine.solve_batch(&batch).unwrap();
//!     assert!(batch.max_relative_residual(&x).unwrap() < 1e-9, "{}", engine.name());
//! }
//! ```

pub use cpu_ref;
pub use gpu_sim;
pub use tridiag_core;
pub use tridiag_gpu;

use tridiag_core::{Scalar, SystemBatch};
use tridiag_gpu::buffers::GpuScalar;
use tridiag_gpu::solver::{GpuSolverConfig, GpuTridiagSolver};

/// Uniform error type for the facade: every engine reports through one
/// boxed error so callers can mix engines freely.
pub type SolveError = Box<dyn std::error::Error + Send + Sync + 'static>;

/// One interface over every solver engine in the workspace.
pub trait BatchSolver<S: Scalar> {
    /// Engine name for logs and comparisons.
    fn name(&self) -> &'static str;
    /// Solve every system in the batch; the flat solution uses the
    /// batch's own layout.
    fn solve_batch(&self, batch: &SystemBatch<S>) -> Result<Vec<S>, SolveError>;
}

/// The sequential CPU reference ("MKL (sequential)" stand-in).
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuSequential;

impl<S: Scalar> BatchSolver<S> for CpuSequential {
    fn name(&self) -> &'static str {
        "cpu-sequential"
    }
    fn solve_batch(&self, batch: &SystemBatch<S>) -> Result<Vec<S>, SolveError> {
        Ok(cpu_ref::solve_batch_sequential(batch)?)
    }
}

/// The thread-pooled CPU reference ("MKL (multithreaded)" stand-in).
#[derive(Debug, Clone, Copy)]
pub struct CpuThreaded {
    pool: cpu_ref::ThreadPool,
}

impl CpuThreaded {
    /// One worker per logical CPU.
    pub fn per_cpu() -> Self {
        Self {
            pool: cpu_ref::ThreadPool::per_cpu(),
        }
    }

    /// A fixed worker count.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            pool: cpu_ref::ThreadPool::new(workers),
        }
    }
}

impl<S: Scalar> BatchSolver<S> for CpuThreaded {
    fn name(&self) -> &'static str {
        "cpu-threaded"
    }
    fn solve_batch(&self, batch: &SystemBatch<S>) -> Result<Vec<S>, SolveError> {
        Ok(cpu_ref::solve_batch_threaded(batch, &self.pool)?)
    }
}

/// The lane-vectorised CPU solver over the interleaved layout (the
/// CPU-side analogue of the coalescing layout the paper exploits).
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuInterleaved;

impl<S: Scalar> BatchSolver<S> for CpuInterleaved {
    fn name(&self) -> &'static str {
        "cpu-interleaved"
    }
    fn solve_batch(&self, batch: &SystemBatch<S>) -> Result<Vec<S>, SolveError> {
        use tridiag_core::Layout;
        let inter = batch.to_layout(Layout::Interleaved);
        let xi = cpu_ref::solve_batch_interleaved(&inter)?;
        // Back to the caller's layout.
        let (m, n) = (batch.num_systems(), batch.system_len());
        let mut out = vec![xi[0]; m * n];
        for sys in 0..m {
            for row in 0..n {
                out[batch.index(sys, row)] = xi[row * m + sys];
            }
        }
        Ok(out)
    }
}

/// The paper's hybrid solver on the simulated GPU.
#[derive(Debug, Clone)]
pub struct SimulatedGpu {
    solver: GpuTridiagSolver,
}

impl SimulatedGpu {
    /// The paper's GTX480 with default configuration.
    pub fn gtx480() -> Self {
        Self {
            solver: GpuTridiagSolver::gtx480(),
        }
    }

    /// Custom device + configuration.
    pub fn new(spec: gpu_sim::DeviceSpec, config: GpuSolverConfig) -> Self {
        Self {
            solver: GpuTridiagSolver::new(spec, config),
        }
    }

    /// Access the inner solver (for reports).
    pub fn solver(&self) -> &GpuTridiagSolver {
        &self.solver
    }
}

impl<S: GpuScalar> BatchSolver<S> for SimulatedGpu {
    fn name(&self) -> &'static str {
        "simulated-gpu"
    }
    fn solve_batch(&self, batch: &SystemBatch<S>) -> Result<Vec<S>, SolveError> {
        let (x, _) = self.solver.solve_batch(batch)?;
        Ok(x)
    }
}

/// The paper's hybrid solver sharded across a simulated multi-GPU
/// group: systems split contiguously (±1 balance), one worker thread
/// per device, results merged bit-identically to the single-device
/// path on homogeneous groups.
#[derive(Debug, Clone)]
pub struct SimulatedGpuSharded {
    solver: GpuTridiagSolver,
    group: gpu_sim::DeviceGroup,
}

impl SimulatedGpuSharded {
    /// `devices` identical GTX480s with default configuration.
    pub fn gtx480(devices: usize) -> Result<Self, SolveError> {
        let group = gpu_sim::DeviceGroup::homogeneous(gpu_sim::DeviceSpec::gtx480(), devices)?;
        Ok(Self::new(group, GpuSolverConfig::default()))
    }

    /// A custom (possibly heterogeneous) device group + configuration.
    /// The group's primary device drives the pinned plan decisions.
    pub fn new(group: gpu_sim::DeviceGroup, config: GpuSolverConfig) -> Self {
        Self {
            solver: GpuTridiagSolver::new(group.primary().clone(), config),
            group,
        }
    }

    /// The device group this engine shards across.
    pub fn group(&self) -> &gpu_sim::DeviceGroup {
        &self.group
    }

    /// Access the inner solver (for reports).
    pub fn solver(&self) -> &GpuTridiagSolver {
        &self.solver
    }
}

impl<S: GpuScalar + Send + Sync> BatchSolver<S> for SimulatedGpuSharded {
    fn name(&self) -> &'static str {
        "simulated-gpu-sharded"
    }
    fn solve_batch(&self, batch: &SystemBatch<S>) -> Result<Vec<S>, SolveError> {
        let (x, _) = self.solver.solve_batch_group(&self.group, batch)?;
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::generators;

    #[test]
    fn facade_engines_agree() {
        let batch = generators::random_batch::<f64>(8, 128, 1);
        let engines: Vec<Box<dyn BatchSolver<f64>>> = vec![
            Box::new(CpuSequential),
            Box::new(CpuThreaded::with_workers(4)),
            Box::new(CpuInterleaved),
            Box::new(SimulatedGpu::gtx480()),
            Box::new(SimulatedGpuSharded::gtx480(2).unwrap()),
        ];
        let reference = engines[0].solve_batch(&batch).unwrap();
        for e in &engines[1..] {
            let x = e.solve_batch(&batch).unwrap();
            for i in 0..x.len() {
                assert!((x[i] - reference[i]).abs() < 1e-9, "{} row {i}", e.name());
            }
        }
    }

    #[test]
    fn facade_propagates_errors() {
        let bad = generators::near_singular::<f64>(8, 0, 0.0, 1);
        let batch = SystemBatch::from_systems(vec![bad]).unwrap();
        for e in [
            &CpuSequential as &dyn BatchSolver<f64>,
            &SimulatedGpu::gtx480(),
        ] {
            assert!(e.solve_batch(&batch).is_err(), "{}", e.name());
        }
    }
}
