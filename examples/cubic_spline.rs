//! Natural cubic-spline interpolation — intro application [8] of the
//! paper (spline moments come from one tridiagonal solve).
//!
//! We sample a smooth signal, solve the moment system with both the
//! host Thomas solver and the simulated GPU hybrid, then evaluate the
//! spline between knots and compare with ground truth.
//!
//! Run: `cargo run --release --example cubic_spline`

use scalable_tridiag::tridiag_core::{generators, thomas, SystemBatch};
use scalable_tridiag::tridiag_gpu::solver::GpuTridiagSolver;

fn signal(t: f64) -> f64 {
    (2.0 * t).sin() + 0.3 * (5.0 * t).cos()
}

fn main() {
    let knots = 257usize;
    let h = 0.05f64;
    let values: Vec<f64> = (0..knots).map(|i| signal(i as f64 * h)).collect();

    // Interior moment system (natural boundary: M_0 = M_last = 0).
    let system = generators::cubic_spline_moments(&values, h);

    // Host solve.
    let m_host = thomas::solve_typed(&system).expect("moments");

    // Simulated-GPU solve of the same (single-system) batch.
    let batch = SystemBatch::from_systems(vec![system.clone()]).expect("batch of one");
    let (m_gpu_flat, report) = GpuTridiagSolver::gtx480()
        .solve_batch(&batch)
        .expect("gpu solve");
    let diff = m_host
        .iter()
        .zip(&m_gpu_flat)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    // Full moment vector with the natural zeros at both ends.
    let mut moments = vec![0.0f64];
    moments.extend_from_slice(&m_host);
    moments.push(0.0);

    // Evaluate the spline at midpoints and measure interpolation error.
    let mut max_err = 0.0f64;
    for i in 0..knots - 1 {
        let t = (i as f64 + 0.5) * h;
        let (m0, m1) = (moments[i], moments[i + 1]);
        let (y0, y1) = (values[i], values[i + 1]);
        let a = (i as f64 + 1.0) * h - t; // x_{i+1} - t
        let b = t - i as f64 * h; // t - x_i
        let s = m0 * a.powi(3) / (6.0 * h)
            + m1 * b.powi(3) / (6.0 * h)
            + (y0 / h - m0 * h / 6.0) * a
            + (y1 / h - m1 * h / 6.0) * b;
        max_err = max_err.max((s - signal(t)).abs());
    }

    println!("natural cubic spline through {knots} knots (h = {h})");
    println!("  GPU hybrid used k = {} PCR steps, {:.1} us modeled", report.k, report.total_us);
    println!("  max |host - gpu| moment difference: {diff:.2e}");
    println!("  max interpolation error at midpoints: {max_err:.3e}");
    assert!(diff < 1e-9, "engines disagree");
    // Natural boundary conditions impose zero end-moments, which costs
    // O(h^2) in a boundary layer even for smooth signals.
    assert!(max_err < 5e-3, "spline error beyond the natural-boundary O(h^2) budget");
    println!("  OK");
}
