//! Semi-coarsening multigrid line smoother — intro applications [9][10]
//! of the paper (Göddeke & Strzodka's use case): anisotropic elliptic
//! problems need *line* relaxation, and each relaxation sweep is a
//! batch of tridiagonal solves.
//!
//! Problem: `−ε u_xx − u_yy = f` with strong anisotropy (`ε ≪ 1`).
//! Point smoothers stall on such operators; y-line relaxation (solving
//! whole columns implicitly, one tridiagonal system per column) treats
//! the stiff direction exactly — which is why semi-coarsening multigrid
//! pairs it with coarsening in x only. We run the smoother standalone
//! and show its residual contraction per sweep.
//!
//! Run: `cargo run --release --example multigrid_smoother`

use scalable_tridiag::cpu_ref;
use scalable_tridiag::tridiag_core::{SystemBatch, TridiagonalSystem};

struct Grid {
    n: usize,
    h: f64,
    eps: f64,
}

impl Grid {
    fn residual(&self, u: &[f64], f: &[f64]) -> Vec<f64> {
        let n = self.n;
        let ih2 = 1.0 / (self.h * self.h);
        let mut r = vec![0.0; n * n];
        for j in 0..n {
            for i in 0..n {
                let c = u[j * n + i];
                let le = if i > 0 { u[j * n + i - 1] } else { 0.0 };
                let ri = if i + 1 < n { u[j * n + i + 1] } else { 0.0 };
                let up = if j > 0 { u[(j - 1) * n + i] } else { 0.0 };
                let dn = if j + 1 < n { u[(j + 1) * n + i] } else { 0.0 };
                let au = self.eps * ih2 * (2.0 * c - le - ri) + ih2 * (2.0 * c - up - dn);
                r[j * n + i] = f[j * n + i] - au;
            }
        }
        r
    }

    /// One y-line relaxation sweep: for every column i, solve the
    /// tridiagonal system coupling u(i, :) implicitly.
    fn line_smooth(&self, u: &mut [f64], f: &[f64], pool: &cpu_ref::ThreadPool) {
        let n = self.n;
        let ih2 = 1.0 / (self.h * self.h);
        let systems: Vec<TridiagonalSystem<f64>> = (0..n)
            .map(|i| {
                let rhs: Vec<f64> = (0..n)
                    .map(|j| {
                        let le = if i > 0 { u[j * n + i - 1] } else { 0.0 };
                        let ri = if i + 1 < n { u[j * n + i + 1] } else { 0.0 };
                        f[j * n + i] + self.eps * ih2 * (le + ri)
                    })
                    .collect();
                TridiagonalSystem::new(
                    vec![-ih2; n],
                    vec![2.0 * ih2 + 2.0 * self.eps * ih2; n],
                    vec![-ih2; n],
                    rhs,
                )
                .expect("line system")
            })
            .collect();
        let batch = SystemBatch::from_systems(systems).expect("column batch");
        let x = cpu_ref::solve_batch_threaded(&batch, pool).expect("line solve");
        for i in 0..n {
            for j in 0..n {
                u[j * n + i] = x[batch.index(i, j)];
            }
        }
    }
}

fn norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |a, &b| a.max(b.abs()))
}

fn main() {
    let n = 128usize;
    let grid = Grid {
        n,
        h: 1.0 / (n as f64 + 1.0),
        eps: 1e-3, // strong anisotropy: y-direction dominates
    };
    let pool = cpu_ref::ThreadPool::per_cpu();

    // Random-ish forcing.
    let f: Vec<f64> = (0..n * n)
        .map(|t| ((t * 2654435761usize) % 1000) as f64 / 1000.0 - 0.5)
        .collect();
    let mut u = vec![0.0f64; n * n];

    println!("anisotropic Poisson (eps = {}), {n}x{n} grid, y-line smoothing", grid.eps);
    let r0 = norm(&grid.residual(&u, &f));
    println!("  initial residual: {r0:.3e}");
    let mut prev = r0;
    for sweep in 1..=6 {
        grid.line_smooth(&mut u, &f, &pool);
        let r = norm(&grid.residual(&u, &f));
        println!(
            "  sweep {sweep}: residual {r:.3e}  (contraction {:.3})",
            r / prev
        );
        prev = r;
    }
    // Line relaxation must contract the residual strongly on an
    // anisotropic operator where point smoothers crawl.
    assert!(
        prev < r0 * 1e-2,
        "line smoother failed to contract: {prev:.3e} vs {r0:.3e}"
    );
    println!("  OK: line relaxation contracts the anisotropic residual");
}
