//! 1-D heat equation via Crank–Nicolson time stepping — the implicit
//! PDE workload class (fluid dynamics / diffusion) that motivates fast
//! tridiagonal solvers in the paper's introduction.
//!
//! `u_t = α u_xx` on `[0, 1]` with homogeneous Dirichlet boundaries.
//! Crank–Nicolson gives, per step, a constant tridiagonal system
//! `(I + r/2·L) u^{t+1} = (I − r/2·L) u^t` with `L` the second
//! difference and `r = α Δt / Δx²`. We verify against the exact decay
//! of the first Fourier mode `sin(πx) → e^{−π²αt} sin(πx)`.
//!
//! Run: `cargo run --release --example heat_equation`

use scalable_tridiag::tridiag_core::factored::FactoredTridiagonal;
use scalable_tridiag::tridiag_core::TridiagonalSystem;

fn main() {
    let n = 511usize; // interior points
    let alpha = 0.1;
    let dx = 1.0 / (n as f64 + 1.0);
    let dt = 1e-4;
    let steps = 2000usize;
    let r = alpha * dt / (dx * dx);

    // Left-hand operator (I + r/2 L), L = tridiag(-1, 2, -1).
    let lhs = TridiagonalSystem::new(
        vec![-r / 2.0; n],
        vec![1.0 + r; n],
        vec![-r / 2.0; n],
        vec![0.0; n],
    )
    .expect("operator");

    // Initial condition: first Fourier mode.
    let mut u: Vec<f64> = (1..=n)
        .map(|i| (std::f64::consts::PI * i as f64 * dx).sin())
        .collect();

    // The operator never changes: factor it once (the dgttrf/dgttrs
    // split), then every step is a division-free two-sweep solve.
    let factored = FactoredTridiagonal::new(&lhs).expect("factorisation");
    let mut rhs = vec![0.0f64; n];
    let mut x = vec![0.0f64; n];
    let t0 = std::time::Instant::now();
    for _ in 0..steps {
        // rhs = (I - r/2 L) u.
        for i in 0..n {
            let left = if i > 0 { u[i - 1] } else { 0.0 };
            let right = if i + 1 < n { u[i + 1] } else { 0.0 };
            rhs[i] = (1.0 - r) * u[i] + (r / 2.0) * (left + right);
        }
        factored.solve_into(&rhs, &mut x).expect("CN step");
        u.copy_from_slice(&x);
    }
    let elapsed = t0.elapsed();

    // Exact solution of the first mode after t = steps*dt.
    let t_final = steps as f64 * dt;
    let decay = (-std::f64::consts::PI.powi(2) * alpha * t_final).exp();
    let mut max_err = 0.0f64;
    for (i, &ui) in u.iter().enumerate() {
        let xi = (i as f64 + 1.0) * dx;
        let exact = decay * (std::f64::consts::PI * xi).sin();
        max_err = max_err.max((ui - exact).abs());
    }

    println!("Crank-Nicolson heat equation: {n} interior points, {steps} steps");
    println!("  wall-clock: {elapsed:?} ({:.1} ns/unknown/step)",
        elapsed.as_nanos() as f64 / (n * steps) as f64);
    println!("  analytic mode decay: {decay:.6}");
    println!("  max error vs exact Fourier solution: {max_err:.3e}");
    assert!(
        max_err < 1e-4,
        "Crank-Nicolson second-order accuracy violated"
    );
    println!("  OK: within the scheme's discretisation error");
}
