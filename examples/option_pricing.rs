//! Black–Scholes option pricing by Crank–Nicolson finite differences —
//! the quantitative-finance workload of the paper's references [14][15]
//! (Egloff's "High performance finite difference PDE solvers on GPUs"):
//! every time step of the implicit scheme is one tridiagonal solve.
//!
//! We price a European put, compare against the closed-form
//! Black–Scholes value, and also run a *batch* of strikes through the
//! simulated GPU solver (pricing desks reprice whole surfaces — an
//! `(M, N)` batch, the paper's exact target shape).
//!
//! Run: `cargo run --release --example option_pricing`

use scalable_tridiag::tridiag_core::thomas::{self, ThomasScratch};
use scalable_tridiag::tridiag_core::{SystemBatch, TridiagonalSystem};
use scalable_tridiag::tridiag_gpu::solver::GpuTridiagSolver;

/// Standard normal CDF via the Abramowitz–Stegun rational erf
/// approximation (|error| < 7.5e-8 — far below the FD error here).
fn norm_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.2316419 * x.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    if x >= 0.0 {
        1.0 - pdf * poly
    } else {
        pdf * poly
    }
}

/// Closed-form Black–Scholes European put.
fn bs_put(s0: f64, strike: f64, r: f64, sigma: f64, t: f64) -> f64 {
    let d1 = ((s0 / strike).ln() + (r + 0.5 * sigma * sigma) * t) / (sigma * t.sqrt());
    let d2 = d1 - sigma * t.sqrt();
    strike * (-r * t).exp() * norm_cdf(-d2) - s0 * norm_cdf(-d1)
}

/// Build the Crank–Nicolson step operator for the BS PDE on a uniform
/// S-grid with `n` interior nodes, spacing `ds`, step `dt`.
/// Returns `(lhs_operator, explicit_coefficients)` where the RHS at
/// node `i` is `alpha_i·v[i-1] + beta_i·v[i] + gamma_i·v[i+1]` plus
/// boundary adjustments.
#[allow(clippy::type_complexity)]
fn cn_operator(
    n: usize,
    ds: f64,
    dt: f64,
    r: f64,
    sigma: f64,
) -> (TridiagonalSystem<f64>, Vec<(f64, f64, f64)>) {
    let mut lower = vec![0.0; n];
    let mut diag = vec![0.0; n];
    let mut upper = vec![0.0; n];
    let mut explicit = Vec::with_capacity(n);
    for i in 0..n {
        let s = (i as f64 + 1.0) * ds;
        let a = 0.5 * sigma * sigma * s * s / (ds * ds); // diffusion
        let b = 0.5 * r * s / ds; // drift
        // L v = a (v_{i-1} - 2 v_i + v_{i+1}) + b (v_{i+1} - v_{i-1}) - r v_i.
        let (lo, mid, hi) = (a - b, -2.0 * a - r, a + b);
        // (I - dt/2 L) v^{new} = (I + dt/2 L) v^{old}.
        lower[i] = -0.5 * dt * lo;
        diag[i] = 1.0 - 0.5 * dt * mid;
        upper[i] = -0.5 * dt * hi;
        explicit.push((0.5 * dt * lo, 1.0 + 0.5 * dt * mid, 0.5 * dt * hi));
    }
    let lhs = TridiagonalSystem::new(lower, diag, upper, vec![0.0; n]).expect("CN operator");
    (lhs, explicit)
}

/// Price one put by CN time stepping; returns the grid of prices at t=0.
fn price_put_fd(strike: f64, s_max: f64, n: usize, steps: usize, r: f64, sigma: f64, t: f64) -> Vec<f64> {
    let ds = s_max / (n as f64 + 1.0);
    let dt = t / steps as f64;
    let (lhs, explicit) = cn_operator(n, ds, dt, r, sigma);

    // Terminal payoff.
    let mut v: Vec<f64> = (1..=n)
        .map(|i| (strike - i as f64 * ds).max(0.0))
        .collect();
    let mut sys = lhs.clone();
    let mut scratch = ThomasScratch::new(n);
    let mut x = vec![0.0f64; n];
    for step in 0..steps {
        // Time remaining after this step (we march backward from T).
        let tau = (step as f64 + 1.0) * dt;
        let bc_low = strike * (-r * tau).exp(); // v(0, tau) for a put
        {
            let rhs = sys.rhs_mut();
            for i in 0..n {
                let (lo, mid, hi) = explicit[i];
                let vm = if i > 0 { v[i - 1] } else { bc_low };
                let vp = if i + 1 < n { v[i + 1] } else { 0.0 };
                rhs[i] = lo * vm + mid * v[i] + hi * vp;
            }
            // Implicit boundary contribution at the low end: the
            // (I − dt/2·L) term that references v(0) moves to the RHS.
            // Its coefficient +dt/2·lo_0 equals explicit[0].0.
            rhs[0] += explicit[0].0 * bc_low;
        }
        thomas::solve_into(&sys, &mut x, &mut scratch).expect("CN step");
        v.copy_from_slice(&x);
    }
    v
}

fn main() {
    let (r, sigma, t) = (0.05f64, 0.25f64, 1.0f64);
    let s_max = 300.0f64;
    let n = 599usize;
    let steps = 400usize;
    let ds = s_max / (n as f64 + 1.0);

    // --- single strike, accuracy check -------------------------------
    let strike = 100.0;
    let grid = price_put_fd(strike, s_max, n, steps, r, sigma, t);
    let spot = 100.0;
    let i = (spot / ds).round() as usize - 1;
    let fd = grid[i];
    let exact = bs_put(spot, strike, r, sigma, t);
    println!("European put K={strike}, S0={spot}, r={r}, sigma={sigma}, T={t}");
    println!("  closed form : {exact:.4}");
    println!("  CN grid     : {fd:.4}  (|err| = {:.2e})", (fd - exact).abs());
    assert!(
        (fd - exact).abs() < 0.05,
        "finite differences should price within a nickel"
    );

    // --- a strike surface as a batch on the simulated GPU ------------
    // One CN step couples only within a strike's grid, so stepping a
    // whole surface is an (M strikes × N nodes) batched solve.
    let strikes: Vec<f64> = (0..64).map(|k| 60.0 + 1.25 * k as f64).collect();
    let dt = t / steps as f64;
    let (lhs, explicit) = cn_operator(n, ds, dt, r, sigma);
    let systems: Vec<TridiagonalSystem<f64>> = strikes
        .iter()
        .map(|&k| {
            let payoff: Vec<f64> = (1..=n).map(|i| (k - i as f64 * ds).max(0.0)).collect();
            let mut sys = lhs.clone();
            let bc_low = k * (-r * dt).exp();
            {
                let rhs = sys.rhs_mut();
                for i in 0..n {
                    let (lo, mid, hi) = explicit[i];
                    let vm = if i > 0 { payoff[i - 1] } else { bc_low };
                    let vp = if i + 1 < n { payoff[i + 1] } else { 0.0 };
                    rhs[i] = lo * vm + mid * payoff[i] + hi * vp;
                }
                rhs[0] += explicit[0].0 * bc_low;
            }
            sys
        })
        .collect();
    let batch = SystemBatch::from_systems(systems).expect("strike batch");
    let (x, report) = GpuTridiagSolver::gtx480().solve_batch(&batch).expect("gpu step");
    println!(
        "\none CN step for {} strikes x {n} nodes on simulated GTX480:",
        strikes.len()
    );
    println!(
        "  {:.1} us modeled, k = {} PCR steps, residual {:.1e}",
        report.total_us,
        report.k,
        batch.max_relative_residual(&x).expect("residual")
    );
    assert!(batch.max_relative_residual(&x).expect("residual") < 1e-10);
    println!("  OK");
}
