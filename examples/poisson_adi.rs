//! 2-D Poisson equation via ADI (alternating-direction implicit)
//! iteration — the Poisson-solver / fluid-simulation workload of the
//! paper's introduction ([4][5][6]): every half-step solves a *batch*
//! of independent tridiagonal systems, one per grid line, which is
//! exactly the `(M, N)` batched shape the paper benchmarks.
//!
//! Solves `−Δu = f` on the unit square (Dirichlet zero boundary) with
//! `f` chosen so `u(x, y) = sin(πx) sin(πy)` is exact, using
//! Peaceman–Rachford ADI with a Wachspress parameter cycle (a geometric
//! ladder between the operator's extreme eigenvalues — the standard way
//! to make single-parameter ADI converge in tens of sweeps). Row/column
//! sweeps go to the batched CPU solver; one representative sweep also
//! runs on the simulated GPU to show the batch mapping.
//!
//! Run: `cargo run --release --example poisson_adi`

use scalable_tridiag::cpu_ref;
use scalable_tridiag::tridiag_core::{SystemBatch, TridiagonalSystem};
use scalable_tridiag::tridiag_gpu::solver::GpuTridiagSolver;
use std::f64::consts::PI;

fn main() {
    let n = 127usize; // interior points per dimension
    let h = 1.0 / (n as f64 + 1.0);
    let cycles = 4usize;

    // Eigenvalue range of the 1-D operator A = tridiag(-1,2,-1)/h².
    let lambda_min = 4.0 * (PI * h / 2.0).sin().powi(2) / (h * h);
    let lambda_max = 4.0 * (PI * h * n as f64 / 2.0).sin().powi(2) / (h * h);
    // Wachspress cycle: J parameters geometrically spaced in [λmin, λmax].
    let j_params = 8usize;
    let rhos: Vec<f64> = (0..j_params)
        .map(|j| {
            lambda_min
                * (lambda_max / lambda_min).powf((j as f64 + 0.5) / j_params as f64)
        })
        .collect();

    // f = 2π² sin(πx) sin(πy); exact u = sin(πx) sin(πy).
    let f = |i: usize, j: usize| {
        2.0 * PI * PI * (PI * (i as f64 + 1.0) * h).sin() * (PI * (j as f64 + 1.0) * h).sin()
    };

    let mut u = vec![0.0f64; n * n]; // u[j*n + i], row-major
    let pool = cpu_ref::ThreadPool::per_cpu();
    let ih2 = 1.0 / (h * h);

    // One tridiagonal line operator (ρI + A) with the given RHS.
    let line_operator = |rho: f64, rhs: Vec<f64>| -> TridiagonalSystem<f64> {
        TridiagonalSystem::new(
            vec![-ih2; n],
            vec![rho + 2.0 * ih2; n],
            vec![-ih2; n],
            rhs,
        )
        .expect("line operator")
    };

    let t0 = std::time::Instant::now();
    let mut sweeps = 0usize;
    for _ in 0..cycles {
        for &rho in &rhos {
            sweeps += 1;
            // --- x half-step: (ρI + A_x) u* = (ρI − A_y) u + f, per row j
            let rows: Vec<TridiagonalSystem<f64>> = (0..n)
                .map(|j| {
                    let rhs: Vec<f64> = (0..n)
                        .map(|i| {
                            let up = if j > 0 { u[(j - 1) * n + i] } else { 0.0 };
                            let dn = if j + 1 < n { u[(j + 1) * n + i] } else { 0.0 };
                            f(i, j) + (rho - 2.0 * ih2) * u[j * n + i] + ih2 * (up + dn)
                        })
                        .collect();
                    line_operator(rho, rhs)
                })
                .collect();
            let batch = SystemBatch::from_systems(rows).expect("row batch");
            let x = cpu_ref::solve_batch_threaded(&batch, &pool).expect("x sweep");
            for j in 0..n {
                for i in 0..n {
                    u[j * n + i] = x[batch.index(j, i)];
                }
            }

            // --- y half-step: (ρI + A_y) u = (ρI − A_x) u* + f, per col i
            let cols: Vec<TridiagonalSystem<f64>> = (0..n)
                .map(|i| {
                    let rhs: Vec<f64> = (0..n)
                        .map(|j| {
                            let le = if i > 0 { u[j * n + i - 1] } else { 0.0 };
                            let ri = if i + 1 < n { u[j * n + i + 1] } else { 0.0 };
                            f(i, j) + (rho - 2.0 * ih2) * u[j * n + i] + ih2 * (le + ri)
                        })
                        .collect();
                    line_operator(rho, rhs)
                })
                .collect();
            let batch = SystemBatch::from_systems(cols).expect("column batch");
            let x = cpu_ref::solve_batch_threaded(&batch, &pool).expect("y sweep");
            for i in 0..n {
                for j in 0..n {
                    u[j * n + i] = x[batch.index(i, j)];
                }
            }
        }
    }
    let elapsed = t0.elapsed();

    let mut max_err = 0.0f64;
    for j in 0..n {
        for i in 0..n {
            let exact = (PI * (i as f64 + 1.0) * h).sin() * (PI * (j as f64 + 1.0) * h).sin();
            max_err = max_err.max((u[j * n + i] - exact).abs());
        }
    }
    println!("ADI Poisson on a {n}x{n} grid, {sweeps} double sweeps: {elapsed:?}");
    println!("  Wachspress ladder: {j_params} parameters in [{lambda_min:.1}, {lambda_max:.1}]");
    println!("  max error vs exact solution: {max_err:.3e}");
    // Converged ADI leaves only the 5-point discretisation error, O(h²).
    assert!(
        max_err < 5.0 * h * h,
        "ADI did not converge to discretisation error: {max_err:.3e}"
    );

    // One representative sweep on the simulated GPU: M = n systems of
    // N = n unknowns — the exact batched shape of the paper's Fig. 12.
    let rho = rhos[0];
    let rows: Vec<TridiagonalSystem<f64>> = (0..n)
        .map(|j| {
            let rhs: Vec<f64> = (0..n).map(|i| f(i, j)).collect();
            line_operator(rho, rhs)
        })
        .collect();
    let batch = SystemBatch::from_systems(rows).expect("gpu batch");
    let (xg, report) = GpuTridiagSolver::gtx480().solve_batch(&batch).expect("gpu sweep");
    println!(
        "  one sweep on simulated GTX480: M={n} N={n} -> {:.1} us modeled (k = {}), residual {:.1e}",
        report.total_us,
        report.k,
        batch.max_relative_residual(&xg).expect("residual")
    );
    println!("  OK");
}
