//! The generalised buffered sliding window (the paper's Section VI
//! future work) applied beyond tridiagonal solving: log-depth
//! morphological dilation and binomial smoothing of a long signal, with
//! O(2^k) resident state no matter how long the stream is.
//!
//! Run: `cargo run --release --example streaming_window`

use scalable_tridiag::tridiag_core::streaming::{apply, DilationOp, SmoothingOp, StreamingStencil};

fn main() {
    // A noisy signal with a few sharp events.
    let n = 2_000_000usize;
    let signal: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            let base = (12.0 * std::f64::consts::PI * t).sin() * 0.3;
            let noise = ((i.wrapping_mul(2654435761)) % 1000) as f64 / 2500.0 - 0.2;
            let spike = if i % 250_000 == 0 { 4.0 } else { 0.0 };
            base + noise + spike
        })
        .collect();

    // --- dilation: running max over radius 2^k - 1 in k levels -------
    let k = 10u32; // radius 1023
    let t0 = std::time::Instant::now();
    let dilated = apply(DilationOp, &signal, k).expect("dilation");
    let dt = t0.elapsed();
    println!(
        "dilation radius {} over {} samples: {:?} ({:.1} ns/sample, {} levels)",
        (1 << k) - 1,
        n,
        dt,
        dt.as_nanos() as f64 / n as f64,
        k
    );
    // Every spike should dominate its whole neighbourhood.
    let radius = (1usize << k) - 1;
    for spike_at in (0..n).step_by(250_000) {
        let lo = spike_at.saturating_sub(radius / 2);
        let hi = (spike_at + radius / 2).min(n - 1);
        assert!(dilated[lo] >= 3.5 && dilated[hi] >= 3.5, "spike at {spike_at} must spread");
    }

    // --- resident state is stream-length independent ------------------
    let small = StreamingStencil::new(DilationOp, 1_000, k).expect("small");
    let big = StreamingStencil::new(DilationOp, n, k).expect("big");
    println!(
        "resident window state: {} elements for 1K stream, {} for {}M stream",
        small.resident(),
        big.resident(),
        n / 1_000_000
    );
    assert_eq!(small.resident(), big.resident());

    // --- smoothing: noise suppression ---------------------------------
    let smooth = apply(SmoothingOp, &signal, 6).expect("smoothing");
    let rough = |v: &[f64]| -> f64 {
        v.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (v.len() - 1) as f64
    };
    let before = rough(&signal[1000..n - 1000]);
    let after = rough(&smooth[1000..n - 1000]);
    println!(
        "binomial cascade (6 levels): mean |Δ| {:.4} -> {:.4} ({:.1}x smoother)",
        before,
        after,
        before / after
    );
    assert!(after < before / 3.0, "smoothing must suppress sample-to-sample noise");
    println!("OK: the sliding-window machinery generalises exactly as Section VI anticipated");
}
