//! A guided replay of the paper's running example (Fig. 6): one
//! 8-element system solved by the hybrid — one PCR step splits it into
//! two interleaved 4-element systems, then two "threads" of Thomas
//! finish them in parallel.
//!
//! Prints every intermediate quantity so the data flow of the figure
//! can be followed number by number, and cross-checks each stage
//! against the direct solve.
//!
//! Run: `cargo run --release --example paper_walkthrough`

use scalable_tridiag::tridiag_core::{pcr, thomas, TridiagonalSystem};

fn print_rows(label: &str, a: &[f64], b: &[f64], c: &[f64], d: &[f64]) {
    println!("{label}");
    for i in 0..b.len() {
        println!(
            "  e{}: {:8.4} {:8.4} {:8.4} | {:8.4}",
            i, a[i], b[i], c[i], d[i]
        );
    }
}

fn main() {
    // The 8-element system of Figs. 2/4/6, with concrete dominant
    // numbers. Exact solution x = (1, 2, ..., 8) by construction.
    let n = 8usize;
    let x_true: Vec<f64> = (1..=n).map(|v| v as f64).collect();
    let lower = vec![0.0, -1.0, -1.0, -1.0, -1.0, -1.0, -1.0, -1.0];
    let diag = vec![4.0; n];
    let upper = vec![-1.0, -1.0, -1.0, -1.0, -1.0, -1.0, -1.0, 0.0];
    // d = A x_true.
    let probe = TridiagonalSystem::new(lower.clone(), diag.clone(), upper.clone(), vec![0.0; n])
        .expect("operator");
    let d = probe.apply(&x_true).expect("rhs");
    let system = TridiagonalSystem::new(lower, diag, upper, d).expect("system");

    println!("=== the 8-element system of Fig. 6 (rows e0..e7) ===");
    let (a, b, c, dd) = system.parts();
    print_rows("input rows (a, b, c | d):", a, b, c, dd);

    // --- stage 1: one PCR step (Eqs. 5-6) ----------------------------
    println!("\n=== one PCR step: every row couples to rows ±2 ===");
    let reduced = pcr::reduce(&system, 1).expect("one step");
    let (ra, rb, rc, rd) = reduced.arrays();
    print_rows("reduced rows e'0..e'7 (interleaved in place):", ra, rb, rc, rd);
    println!(
        "-> {} independent subsystems, stride {}",
        reduced.num_subsystems(),
        reduced.stride()
    );

    // --- stage 2: two p-Thomas "threads" -----------------------------
    println!("\n=== p-Thomas: thread j solves rows j, j+2, j+4, j+6 ===");
    let mut x = vec![0.0f64; n];
    for j in 0..reduced.num_subsystems() {
        let sub = reduced.subsystem(j).expect("subsystem");
        let (sa, sb, sc, sd) = sub.parts();
        print_rows(&format!("thread {j} sees (even/odd rows gathered):"), sa, sb, sc, sd);
        let xs = thomas::solve_typed(&sub).expect("thread solve");
        println!("  thread {j} solution: {xs:?}");
        for (t, &v) in xs.iter().enumerate() {
            x[j + t * reduced.stride()] = v;
        }
    }

    println!("\n=== scattered back to original order ===");
    println!("  x        = {x:?}");
    println!("  expected = {x_true:?}");
    let err = x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("  max error = {err:.2e}");
    assert!(err < 1e-12, "the walkthrough must be exact");

    // Also confirm the direct solve agrees — the whole point of the
    // divide-and-conquer: same answer, restructured work.
    let direct = thomas::solve_typed(&system).expect("direct");
    let diff = x
        .iter()
        .zip(&direct)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("  |hybrid - direct Thomas| = {diff:.2e}");
    println!("\nOK: Fig. 6's pipeline reproduced end to end");
}
