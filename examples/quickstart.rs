//! Quickstart: build a batch of tridiagonal systems, solve it on the
//! CPU reference and on the simulated GTX480, and compare.
//!
//! Run: `cargo run --release --example quickstart`

use scalable_tridiag::cpu_ref;
use scalable_tridiag::tridiag_core::{generators, thomas, TridiagonalSystem};
use scalable_tridiag::tridiag_gpu::solver::GpuTridiagSolver;

fn main() {
    // --- one system, solved directly --------------------------------
    // | 2 1     | x = | 5 |
    // | 1 3 1   |     |10 |
    // |   1 2 1 |     | 8 |
    // |     1 4 |     |14 |
    let system = TridiagonalSystem::new(
        vec![0.0, 1.0, 1.0, 1.0],
        vec![2.0, 3.0, 2.0, 4.0],
        vec![1.0, 1.0, 1.0, 0.0],
        vec![5.0, 10.0, 8.0, 14.0],
    )
    .expect("well-formed system");
    let x = thomas::solve_typed(&system).expect("diagonally dominant");
    println!("single system solution: {x:?}");
    println!(
        "residual: {:.2e}",
        system.relative_residual(&x).expect("same length")
    );

    // --- a batch on CPU and simulated GPU ----------------------------
    let (m, n) = (256usize, 1024usize);
    let batch = generators::random_batch::<f64>(m, n, 42);

    let t0 = std::time::Instant::now();
    let x_cpu = cpu_ref::solve_batch_threaded(&batch, &cpu_ref::ThreadPool::per_cpu())
        .expect("cpu solve");
    let cpu_wall = t0.elapsed();

    let solver = GpuTridiagSolver::gtx480();
    let (x_gpu, report) = solver.solve_batch(&batch).expect("gpu solve");

    let max_diff = x_cpu
        .iter()
        .zip(&x_gpu)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nbatch of {m} x {n} systems");
    println!("  CPU (threaded, host wall-clock): {cpu_wall:?}");
    println!(
        "  GPU (modeled GTX480):            {:.1} us, k = {} PCR steps, {} kernel(s)",
        report.total_us,
        report.k,
        report.kernels.len()
    );
    println!("  max |x_cpu - x_gpu| = {max_diff:.2e}");
    println!(
        "  batch residual (GPU solution): {:.2e}",
        batch.max_relative_residual(&x_gpu).expect("residual")
    );
    for kr in &report.kernels {
        println!(
            "  kernel {:>16}: {:8.1} us ({:?}-bound, {:.0}% occupancy, {:.1} MiB traffic)",
            kr.timing.name,
            kr.timing.total_us,
            kr.timing.bound,
            kr.timing.occupancy_fraction * 100.0,
            kr.traffic.traffic_mib,
        );
    }
}
